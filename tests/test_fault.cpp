// Tests for hypervector fault injection and the end-to-end robustness
// property it supports (graceful degradation of segmentation quality).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/seghdc.hpp"
#include "src/hdc/fault.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::hdc;

TEST(FaultInjection, ZeroRateIsNoop) {
  util::Rng rng(1);
  auto hv = HyperVector::random(1024, rng);
  const auto original = hv;
  EXPECT_EQ(inject_bit_flips(hv, 0.0, rng), 0u);
  EXPECT_EQ(hv, original);
}

TEST(FaultInjection, RateOneFlipsEverything) {
  util::Rng rng(2);
  auto hv = HyperVector::random(512, rng);
  const auto original = hv;
  const auto flipped = inject_bit_flips(hv, 1.0, rng);
  EXPECT_EQ(flipped, 512u);
  EXPECT_EQ(HyperVector::hamming(hv, original), 512u);
}

class FaultRateTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultRateTest, FlipCountMatchesRateStatistically) {
  const double rate = GetParam();
  util::Rng rng(3);
  const std::size_t dim = 20000;
  auto hv = HyperVector::random(dim, rng);
  const auto original = hv;
  const auto flipped = inject_bit_flips(hv, rate, rng);
  EXPECT_EQ(HyperVector::hamming(hv, original), flipped);
  // Binomial(d, rate): mean d*rate, stddev sqrt(d*rate*(1-rate)).
  const double expected = static_cast<double>(dim) * rate;
  const double stddev = std::sqrt(expected * (1.0 - rate));
  EXPECT_NEAR(static_cast<double>(flipped), expected, 5.0 * stddev + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, FaultRateTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.3,
                                           0.6, 0.9));

TEST(FaultInjection, RejectsBadRate) {
  util::Rng rng(4);
  auto hv = HyperVector::random(64, rng);
  EXPECT_THROW(inject_bit_flips(hv, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(inject_bit_flips(hv, 1.1, rng), std::invalid_argument);
}

TEST(FaultInjection, DeterministicGivenRngState) {
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  util::Rng source(6);
  auto hv_a = HyperVector::random(2048, source);
  auto hv_b = hv_a;
  inject_bit_flips(hv_a, 0.07, rng_a);
  inject_bit_flips(hv_b, 0.07, rng_b);
  EXPECT_EQ(hv_a, hv_b);
}

// End-to-end robustness: segmentation quality must degrade gracefully
// with the bit-error rate (the HDC claim the paper cites).
TEST(Robustness, SegmentationDegradesGracefully) {
  img::ImageU8 image(48, 48, 1, 25);
  img::ImageU8 truth(48, 48, 1, 0);
  for (std::size_t y = 12; y < 36; ++y) {
    for (std::size_t x = 12; x < 36; ++x) {
      image(x, y) = 215;
      truth(x, y) = 255;
    }
  }
  core::SegHdcConfig config;
  config.dim = 2048;
  config.beta = 6;
  config.iterations = 5;

  const auto iou_at = [&](double rate) {
    auto c = config;
    c.bit_error_rate = rate;
    const auto result = core::SegHdc(c).segment(image);
    return metrics::best_foreground_iou(result.labels, 2, truth).iou;
  };

  const double clean = iou_at(0.0);
  const double at_5pct = iou_at(0.05);
  const double at_10pct = iou_at(0.10);
  EXPECT_DOUBLE_EQ(clean, 1.0);
  EXPECT_GT(at_5pct, 0.95);   // nearly unaffected
  EXPECT_GT(at_10pct, 0.90);  // graceful, not catastrophic
}

TEST(Robustness, ConfigValidatesRate) {
  core::SegHdcConfig config;
  config.bit_error_rate = 1.5;
  EXPECT_THROW(core::SegHdc{config}, std::invalid_argument);
}

}  // namespace
