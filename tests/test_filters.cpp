// Tests for the image filters used by the dataset generators.
#include <gtest/gtest.h>

#include <numeric>

#include "src/imaging/filters.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::img;

double mean_of(const ImageU8& image) {
  double sum = 0.0;
  for (const auto v : image.pixels()) {
    sum += v;
  }
  return sum / static_cast<double>(image.size());
}

TEST(GaussianBlur, ZeroSigmaIsIdentity) {
  ImageU8 image(8, 8, 1);
  image.at(4, 4) = 200;
  EXPECT_EQ(gaussian_blur(image, 0.0), image);
  EXPECT_EQ(gaussian_blur(image, -1.0), image);
}

TEST(GaussianBlur, SpreadsAnImpulse) {
  ImageU8 image(11, 11, 1, 0);
  image.at(5, 5) = 255;
  const auto blurred = gaussian_blur(image, 1.5);
  EXPECT_LT(blurred.at(5, 5), 255);
  EXPECT_GT(blurred.at(4, 5), 0);
  EXPECT_GT(blurred.at(5, 4), 0);
  // Symmetric kernel on a centered impulse.
  EXPECT_EQ(blurred.at(4, 5), blurred.at(6, 5));
  EXPECT_EQ(blurred.at(5, 4), blurred.at(5, 6));
}

TEST(GaussianBlur, ApproximatelyPreservesMean) {
  seghdc::util::Rng rng(1);
  ImageU8 image(32, 32, 1);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto blurred = gaussian_blur(image, 2.0);
  EXPECT_NEAR(mean_of(blurred), mean_of(image), 2.0);
}

TEST(GaussianBlur, FlatImageUnchanged) {
  const ImageU8 image(16, 16, 3, 99);
  const auto blurred = gaussian_blur(image, 3.0);
  for (const auto v : blurred.pixels()) {
    EXPECT_EQ(v, 99);
  }
}

TEST(BoxBlur, ZeroRadiusIsIdentity) {
  ImageU8 image(5, 5, 1);
  image.at(2, 2) = 100;
  EXPECT_EQ(box_blur(image, 0), image);
}

TEST(BoxBlur, AveragesNeighborhood) {
  ImageU8 image(5, 5, 1, 0);
  image.at(2, 2) = 90;
  const auto blurred = box_blur(image, 1);
  EXPECT_EQ(blurred.at(2, 2), 10);  // 90 / 9
  EXPECT_EQ(blurred.at(1, 1), 10);
  EXPECT_EQ(blurred.at(4, 4), 0);
}

TEST(Otsu, SeparatesBimodalHistogram) {
  ImageU8 image(20, 20, 1);
  for (std::size_t y = 0; y < 20; ++y) {
    for (std::size_t x = 0; x < 20; ++x) {
      image.at(x, y) = x < 10 ? 40 : 200;
    }
  }
  const auto t = otsu_threshold(image);
  EXPECT_GE(t, 40);
  EXPECT_LT(t, 200);
}

TEST(Otsu, FlatImageDoesNotCrash) {
  const ImageU8 image(8, 8, 1, 100);
  EXPECT_NO_THROW(otsu_threshold(image));
}

TEST(Threshold, BinarizesStrictlyAbove) {
  ImageU8 image(3, 1, 1);
  image.at(0, 0) = 99;
  image.at(1, 0) = 100;
  image.at(2, 0) = 101;
  const auto mask = threshold(image, 100);
  EXPECT_EQ(mask.at(0, 0), 0);
  EXPECT_EQ(mask.at(1, 0), 0);
  EXPECT_EQ(mask.at(2, 0), 255);
}

TEST(ResizeBilinear, IdentitySize) {
  seghdc::util::Rng rng(2);
  ImageU8 image(7, 5, 3);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto resized = resize_bilinear(image, 7, 5);
  EXPECT_EQ(resized, image);
}

TEST(ResizeBilinear, FlatStaysFlat) {
  const ImageU8 image(10, 10, 1, 77);
  const auto up = resize_bilinear(image, 23, 17);
  EXPECT_EQ(up.width(), 23u);
  EXPECT_EQ(up.height(), 17u);
  for (const auto v : up.pixels()) {
    EXPECT_EQ(v, 77);
  }
}

TEST(ResizeBilinear, DownscalePreservesMeanApproximately) {
  seghdc::util::Rng rng(3);
  ImageU8 image(64, 64, 1);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto down = resize_bilinear(image, 32, 32);
  EXPECT_NEAR(mean_of(down), mean_of(image), 4.0);
}

TEST(ResizeNearest, PreservesLabelValues) {
  seghdc::img::LabelMap labels(4, 4, 1, 0);
  labels.at(0, 0) = 7;
  labels.at(3, 3) = 1000000;
  const auto up = resize_nearest(labels, 8, 8);
  EXPECT_EQ(up.at(0, 0), 7u);
  EXPECT_EQ(up.at(7, 7), 1000000u);
  // Nearest-neighbour never invents new labels.
  for (const auto v : up.pixels()) {
    EXPECT_TRUE(v == 0u || v == 7u || v == 1000000u);
  }
}

TEST(Vignette, DarkensCornersKeepsCenter) {
  ImageU8 image(21, 21, 1, 200);
  apply_vignette(image, 0.5);
  EXPECT_NEAR(image.at(10, 10), 200, 2);
  EXPECT_LT(image.at(0, 0), 120);
  // Symmetry across corners.
  EXPECT_NEAR(image.at(0, 0), image.at(20, 20), 2);
}

TEST(Vignette, RejectsBadGain) {
  ImageU8 image(4, 4, 1, 100);
  EXPECT_THROW(apply_vignette(image, 0.0), std::invalid_argument);
  EXPECT_THROW(apply_vignette(image, 1.5), std::invalid_argument);
}

}  // namespace
