// Tier-1 suite for the multi-tenant fleet layer (src/serve/fleet.*) and
// its quota primitive (util::AdmissionGate). The gate under test:
// multi-tenancy changes who waits, never what anyone gets — every
// tenant's results must be bit-identical to a solo SegHdcServer with
// that tenant's config, at every quota setting, contention level, and
// retire schedule. The golden tenant pins the PR-2 batch hash
// 13206585988845182882 through the fleet path.
//
// SEGHDC_TEST_QUEUE_CAP (default 0 = unbounded) forces every tenant's
// pending-queue capacity in the determinism tests, so a CI job can run
// the whole suite under 1-slot queues (forced fleet-gate contention) —
// outputs must not move.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/config.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/fleet.hpp"
#include "src/serve/server.hpp"
#include "src/util/admission_gate.hpp"

namespace {

using namespace seghdc;

std::size_t test_queue_capacity() {
  const char* env = std::getenv("SEGHDC_TEST_QUEUE_CAP");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (*env < '0' || *env > '9' || *end != '\0') {
    throw std::invalid_argument(
        std::string("SEGHDC_TEST_QUEUE_CAP must be a non-negative "
                    "integer, got '") +
        env + "'");
  }
  return static_cast<std::size_t>(value);
}

img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

/// The exact batch + config of SegHdcSession.SegmentManyGoldenLabelHash.
std::vector<img::ImageU8> golden_batch() {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));
  return images;
}

core::SegHdcConfig golden_config() {
  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;

std::uint64_t results_hash(
    const std::vector<core::SegmentationResult>& results) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

/// A tenant other than the golden one: different dim/seed/iterations so
/// cross-tenant contamination cannot hash-collide by accident.
core::SegHdcConfig variant_config(std::uint64_t seed, std::size_t dim,
                                  std::size_t iterations) {
  core::SegHdcConfig config;
  config.dim = dim;
  config.beta = 4;
  config.iterations = iterations;
  config.seed = seed;
  return config;
}

/// The answer key: what a solo SegHdcServer (== SegHdc synchronous
/// path, pinned by test_serve) delivers for this config and batch.
std::uint64_t solo_hash(const core::SegHdcConfig& config,
                        const std::vector<img::ImageU8>& images) {
  serve::SegHdcServer server(config);
  std::vector<std::future<core::SegmentationResult>> futures;
  futures.reserve(images.size());
  for (const auto& image : images) {
    futures.push_back(server.submit(image));
  }
  std::vector<core::SegmentationResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results_hash(results);
}

serve::TenantOptions contended_tenant_options() {
  serve::TenantOptions options;
  options.max_queued = test_queue_capacity();
  options.max_in_flight = 2;
  return options;
}

// --- AdmissionGate: the in-flight quota primitive. ---

TEST(AdmissionGate, ZeroLimitIsUnlimitedButStillCounts) {
  util::AdmissionGate gate;  // limit 0
  EXPECT_EQ(gate.limit(), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gate.try_acquire());
  }
  EXPECT_EQ(gate.in_use(), 100u);
  for (int i = 0; i < 100; ++i) {
    gate.release();
  }
  EXPECT_EQ(gate.in_use(), 0u);
}

TEST(AdmissionGate, TryAcquireRefusesPastTheLimit) {
  util::AdmissionGate gate(2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());  // full — never blocks
  gate.release();
  EXPECT_TRUE(gate.try_acquire());  // slot came back
  EXPECT_EQ(gate.in_use(), 2u);
}

TEST(AdmissionGate, BlockingAcquireWakesOnRelease) {
  util::AdmissionGate gate(1);
  ASSERT_TRUE(gate.acquire());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    acquired.store(gate.acquire());
  });
  gate.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(gate.in_use(), 1u);
}

TEST(AdmissionGate, CloseFailsAcquiresButHeldSlotsStayValid) {
  util::AdmissionGate gate(2);
  ASSERT_TRUE(gate.try_acquire());
  ASSERT_TRUE(gate.try_acquire());
  gate.close();
  EXPECT_TRUE(gate.closed());
  EXPECT_FALSE(gate.try_acquire());
  EXPECT_FALSE(gate.acquire());
  EXPECT_EQ(gate.in_use(), 2u);  // held slots survive the close
  gate.release();
  gate.release();
  EXPECT_EQ(gate.in_use(), 0u);
}

TEST(AdmissionGate, CloseWakesABlockedAcquirerWithFalse) {
  util::AdmissionGate gate(1);
  ASSERT_TRUE(gate.acquire());
  std::atomic<int> outcome{-1};
  std::thread waiter([&] { outcome.store(gate.acquire() ? 1 : 0); });
  gate.close();
  waiter.join();
  EXPECT_EQ(outcome.load(), 0);
  gate.release();
}

TEST(AdmissionGate, ReleaseWithoutAcquireIsAContractViolation) {
  util::AdmissionGate gate(1);
  EXPECT_THROW(gate.release(), std::logic_error);
}

// --- Fleet basics: registry, validation, stats plumbing. ---

TEST(SegHdcFleet, AddHasRetireRoundTrip) {
  serve::SegHdcFleet fleet;
  EXPECT_FALSE(fleet.has_tenant("a"));
  fleet.add_tenant("a", golden_config());
  fleet.add_tenant("b", variant_config(7, 256, 3));
  EXPECT_TRUE(fleet.has_tenant("a"));
  EXPECT_EQ(fleet.tenant_names(),
            (std::vector<std::string>{"a", "b"}));
  fleet.retire_tenant("a");
  EXPECT_FALSE(fleet.has_tenant("a"));
  EXPECT_EQ(fleet.tenant_names(), (std::vector<std::string>{"b"}));
}

TEST(SegHdcFleet, UnknownTenantThrowsEverywhere) {
  serve::SegHdcFleet fleet;
  fleet.add_tenant("real", golden_config());
  EXPECT_THROW(fleet.submit("ghost", make_gray_card(16, 10, 200)),
               serve::UnknownTenantError);
  EXPECT_THROW(fleet.retire_tenant("ghost"), serve::UnknownTenantError);
  EXPECT_THROW(fleet.tenant_stats("ghost"), serve::UnknownTenantError);
}

TEST(SegHdcFleet, DuplicateTenantNameThrows) {
  serve::SegHdcFleet fleet;
  fleet.add_tenant("a", golden_config());
  EXPECT_THROW(fleet.add_tenant("a", golden_config()),
               serve::DuplicateTenantError);
}

TEST(SegHdcFleet, BadTenantOptionsThrowWithoutRegistering) {
  serve::SegHdcFleet fleet;
  serve::TenantOptions zero_weight;
  zero_weight.weight = 0;
  EXPECT_THROW(fleet.add_tenant("w", golden_config(), zero_weight),
               std::invalid_argument);
  core::SegHdcConfig bad = golden_config();
  bad.dim = 0;  // the session rejects this
  EXPECT_THROW(fleet.add_tenant("c", bad), std::invalid_argument);
  EXPECT_THROW(fleet.add_tenant("", golden_config()),
               std::invalid_argument);
  EXPECT_TRUE(fleet.tenant_names().empty());
  // ...and the failed adds must not have poisoned the name.
  fleet.add_tenant("w", golden_config());
  EXPECT_TRUE(fleet.has_tenant("w"));
}

TEST(SegHdcFleet, SubmitAfterFleetShutdownThrows) {
  serve::SegHdcFleet fleet;
  fleet.add_tenant("a", golden_config());
  fleet.shutdown();
  EXPECT_THROW(fleet.submit("a", make_gray_card(16, 10, 200)),
               serve::UnknownTenantError);  // retired with the fleet
  EXPECT_THROW(fleet.add_tenant("b", golden_config()),
               serve::ShutdownError);
}

// --- The determinism gate. ---

TEST(SegHdcFleet, GoldenTenantReproducesTheGoldenBatchHash) {
  serve::SegHdcFleet fleet;
  fleet.add_tenant("golden", golden_config(), contended_tenant_options());
  std::vector<std::future<core::SegmentationResult>> futures;
  for (const auto& image : golden_batch()) {
    futures.push_back(fleet.submit("golden", image));
  }
  std::vector<core::SegmentationResult> results;
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  EXPECT_EQ(results_hash(results), kGoldenBatchHash);
  const auto stats = fleet.tenant_stats("golden");
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.server.completed, 3u);
}

TEST(SegHdcFleet, EveryTenantMatchesItsSoloServerUnderContention) {
  // Three tenants with different configs, submitted interleaved from
  // three threads, squeezed through a 2-slot fleet-wide in-flight cap
  // (and SEGHDC_TEST_QUEUE_CAP-sized pending queues when CI forces
  // them): every tenant's hash must equal its solo-server hash, and the
  // golden tenant must still hit the golden constant.
  struct Spec {
    std::string name;
    core::SegHdcConfig config;
  };
  const std::vector<Spec> specs = {
      {"golden", golden_config()},
      {"small", variant_config(7, 256, 3)},
      {"long", variant_config(1234, 384, 6)},
  };
  const auto images = golden_batch();

  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 2;
  serve::SegHdcFleet fleet(fleet_options);
  for (const auto& spec : specs) {
    fleet.add_tenant(spec.name, spec.config, contended_tenant_options());
  }

  constexpr int kRounds = 3;  // 3 tenants x 3 rounds x 3 images
  std::vector<std::vector<std::future<core::SegmentationResult>>> futures(
      specs.size());
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& image : images) {
          futures[t].push_back(fleet.submit(specs[t].name, image));
        }
      }
    });
  }
  for (auto& thread : submitters) {
    thread.join();
  }

  for (std::size_t t = 0; t < specs.size(); ++t) {
    std::vector<core::SegmentationResult> results;
    for (auto& future : futures[t]) {
      results.push_back(future.get());
    }
    // Per-round hash: each round of 3 images is the golden batch shape.
    for (int round = 0; round < kRounds; ++round) {
      std::vector<core::SegmentationResult> batch(
          results.begin() + round * 3, results.begin() + round * 3 + 3);
      const std::uint64_t expected =
          specs[t].name == "golden" ? kGoldenBatchHash
                                    : solo_hash(specs[t].config, images);
      EXPECT_EQ(results_hash(batch), expected)
          << "tenant " << specs[t].name << " round " << round;
    }
  }

  const auto stats = fleet.stats();
  EXPECT_EQ(stats.accepted, specs.size() * kRounds * images.size());
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.latency.count, stats.completed);
}

TEST(SegHdcFleet, RetiringOneTenantLeavesTheOthersBitIdentical) {
  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 2;
  serve::SegHdcFleet fleet(fleet_options);
  fleet.add_tenant("golden", golden_config(), contended_tenant_options());
  fleet.add_tenant("doomed", variant_config(9, 256, 3),
                   contended_tenant_options());

  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> golden_futures;
  std::vector<std::future<core::SegmentationResult>> doomed_futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& image : images) {
      golden_futures.push_back(fleet.submit("golden", image));
      doomed_futures.push_back(fleet.submit("doomed", image));
    }
  }
  // Retire mid-load: drains everything "doomed" accepted, while
  // "golden" keeps serving.
  fleet.retire_tenant("doomed", serve::ShutdownMode::kDrain);
  EXPECT_FALSE(fleet.has_tenant("doomed"));
  EXPECT_THROW(fleet.submit("doomed", images[0]),
               serve::UnknownTenantError);

  const std::uint64_t doomed_expected =
      solo_hash(variant_config(9, 256, 3), images);
  for (int round = 0; round < 2; ++round) {
    std::vector<core::SegmentationResult> golden_results;
    std::vector<core::SegmentationResult> doomed_results;
    for (int i = 0; i < 3; ++i) {
      golden_results.push_back(golden_futures[round * 3 + i].get());
      doomed_results.push_back(doomed_futures[round * 3 + i].get());
    }
    EXPECT_EQ(results_hash(golden_results), kGoldenBatchHash)
        << "survivor perturbed in round " << round;
    EXPECT_EQ(results_hash(doomed_results), doomed_expected)
        << "drain dropped or corrupted round " << round;
  }
}

TEST(SegHdcFleet, RetireCancelFailsPendingButNeverCorruptsSurvivors) {
  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 1;  // keep most requests at the gate
  serve::SegHdcFleet fleet(fleet_options);
  fleet.add_tenant("golden", golden_config());
  fleet.add_tenant("doomed", variant_config(9, 256, 3));

  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> golden_futures;
  std::vector<std::future<core::SegmentationResult>> doomed_futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& image : images) {
      golden_futures.push_back(fleet.submit("golden", image));
      doomed_futures.push_back(fleet.submit("doomed", image));
    }
  }
  fleet.retire_tenant("doomed", serve::ShutdownMode::kCancel);

  std::size_t delivered = 0;
  std::size_t cancelled = 0;
  for (auto& future : doomed_futures) {
    try {
      (void)future.get();
      ++delivered;
    } catch (const serve::CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(delivered + cancelled, doomed_futures.size());

  std::vector<core::SegmentationResult> golden_results;
  for (auto& future : golden_futures) {
    golden_results.push_back(future.get());
  }
  std::vector<core::SegmentationResult> first_round(
      golden_results.begin(), golden_results.begin() + 3);
  std::vector<core::SegmentationResult> second_round(
      golden_results.begin() + 3, golden_results.end());
  EXPECT_EQ(results_hash(first_round), kGoldenBatchHash);
  EXPECT_EQ(results_hash(second_round), kGoldenBatchHash);
}

// --- Admission quotas. ---

TEST(SegHdcFleet, RejectPolicyRefusesAFullPendingQueue) {
  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 1;
  serve::SegHdcFleet fleet(fleet_options);
  serve::TenantOptions options;
  options.max_queued = 1;
  options.max_in_flight = 1;
  options.admission = serve::BackpressurePolicy::kReject;
  fleet.add_tenant("tight", golden_config(), options);

  // All submissions use the same image, so every future that IS
  // delivered must carry the same bits regardless of which submissions
  // were refused at the gate.
  const img::ImageU8 image = make_gray_card(32, 30, 200);
  const std::uint64_t expected = solo_hash(golden_config(), {image});

  std::vector<std::future<core::SegmentationResult>> futures;
  std::size_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    try {
      futures.push_back(fleet.submit("tight", image));
    } catch (const serve::RejectedError& e) {
      ++rejected;
      EXPECT_STREQ(e.what(),
                   "SegHdcFleet tenant 'tight' admission queue full");
    }
  }
  for (auto& future : futures) {
    std::vector<core::SegmentationResult> one;
    one.push_back(future.get());
    EXPECT_EQ(results_hash(one), expected);
  }
  const auto stats = fleet.tenant_stats("tight");
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.accepted, futures.size());
  EXPECT_EQ(stats.accepted + stats.rejected, 32u);
  // 32 instant submits against a 1-slot queue draining through
  // millisecond-scale segmentations: some must have been refused.
  EXPECT_GT(rejected, 0u);
}

TEST(SegHdcFleet, PerTenantInFlightCapIsRespected) {
  serve::SegHdcFleet fleet;
  serve::TenantOptions options;
  options.max_in_flight = 1;
  fleet.add_tenant("capped", golden_config(), options);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(fleet.submit("capped", make_gray_card(24, 20, 235)));
    EXPECT_LE(fleet.tenant_stats("capped").in_flight, 1u);
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  EXPECT_EQ(fleet.tenant_stats("capped").dispatched, 6u);
}

// --- Fair share. ---

TEST(SegHdcFleet, LateTenantIsNotStarvedByAnEarlierFlood) {
  // One fleet-wide slot: dispatch order is fully serialised, so the
  // round-robin rotation is observable. Tenant A floods 8 heavy images;
  // tenant B then submits 2. Under fair share B's requests interleave
  // with A's (B done after at most ~4 dispatches) instead of waiting
  // behind all 8.
  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 1;
  serve::SegHdcFleet fleet(fleet_options);
  fleet.add_tenant("flood", golden_config());
  fleet.add_tenant("late", golden_config());

  const img::ImageU8 heavy = make_gray_card(48, 30, 200);
  std::vector<std::future<core::SegmentationResult>> flood_futures;
  for (int i = 0; i < 8; ++i) {
    flood_futures.push_back(fleet.submit("flood", heavy));
  }
  std::vector<std::future<core::SegmentationResult>> late_futures;
  for (int i = 0; i < 2; ++i) {
    late_futures.push_back(fleet.submit("late", heavy));
  }
  for (auto& future : late_futures) {
    (void)future.get();
  }
  // The moment B's last result arrived, A's flood must not be done:
  // strict alternation means at most ~4 of its 8 completed (generous
  // bound: < 8 — finishing all 8 would need 4+ more sequential
  // segmentations after B's last completion).
  EXPECT_LT(fleet.tenant_stats("flood").server.completed, 8u);
  for (auto& future : flood_futures) {
    (void)future.get();
  }
  EXPECT_EQ(fleet.tenant_stats("flood").server.completed, 8u);
}

TEST(SegHdcFleet, WeightsSkewTheShareButNeverTheBits) {
  serve::FleetOptions fleet_options;
  fleet_options.max_in_flight_total = 1;
  serve::SegHdcFleet fleet(fleet_options);
  serve::TenantOptions heavy_share;
  heavy_share.weight = 3;
  fleet.add_tenant("heavy", golden_config(), heavy_share);
  fleet.add_tenant("light", golden_config());

  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> heavy_futures;
  std::vector<std::future<core::SegmentationResult>> light_futures;
  for (const auto& image : images) {
    heavy_futures.push_back(fleet.submit("heavy", image));
    light_futures.push_back(fleet.submit("light", image));
  }
  std::vector<core::SegmentationResult> heavy_results;
  std::vector<core::SegmentationResult> light_results;
  for (auto& future : heavy_futures) {
    heavy_results.push_back(future.get());
  }
  for (auto& future : light_futures) {
    light_results.push_back(future.get());
  }
  EXPECT_EQ(results_hash(heavy_results), kGoldenBatchHash);
  EXPECT_EQ(results_hash(light_results), kGoldenBatchHash);
}

// --- Hot add under load. ---

TEST(SegHdcFleet, AddTenantWhileAnotherIsUnderLoad) {
  serve::SegHdcFleet fleet;
  fleet.add_tenant("first", golden_config(), contended_tenant_options());
  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> first_futures;
  for (const auto& image : images) {
    first_futures.push_back(fleet.submit("first", image));
  }
  fleet.add_tenant("second", golden_config(), contended_tenant_options());
  std::vector<std::future<core::SegmentationResult>> second_futures;
  for (const auto& image : images) {
    second_futures.push_back(fleet.submit("second", image));
  }
  std::vector<core::SegmentationResult> first_results;
  std::vector<core::SegmentationResult> second_results;
  for (auto& future : first_futures) {
    first_results.push_back(future.get());
  }
  for (auto& future : second_futures) {
    second_results.push_back(future.get());
  }
  EXPECT_EQ(results_hash(first_results), kGoldenBatchHash);
  EXPECT_EQ(results_hash(second_results), kGoldenBatchHash);
}

}  // namespace
