// Tests for the GEMM kernels against a naive reference.
#include <gtest/gtest.h>

#include <vector>

#include "src/nn/gemm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::nn;

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 seghdc::util::Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) {
    v = static_cast<float>(rng.next_double_in(-1.0, 1.0));
  }
  return m;
}

std::vector<float> reference_nn(std::size_t m, std::size_t n, std::size_t k,
                                const std::vector<float>& a,
                                const std::vector<float>& b) {
  std::vector<float> c(m * n, 0.0F);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a[i * k + p] * b[p * n + j];
      }
    }
  }
  return c;
}

void expect_near(const std::vector<float>& actual,
                 const std::vector<float>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4) << "element " << i;
  }
}

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  seghdc::util::Rng rng(1);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(m * n, 99.0F);
  gemm_nn(m, n, k, a.data(), b.data(), c.data(), /*accumulate=*/false);
  expect_near(c, reference_nn(m, n, k, a, b));
}

TEST_P(GemmShapes, NtMatchesReference) {
  const auto [m, n, k] = GetParam();
  seghdc::util::Rng rng(2);
  const auto a = random_matrix(m, k, rng);
  const auto b_t = random_matrix(n, k, rng);  // B^T stored as [n x k]
  // Reference uses B in [k x n] layout.
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < k; ++p) {
      b[p * n + j] = b_t[j * k + p];
    }
  }
  std::vector<float> c(m * n, 0.0F);
  gemm_nt(m, n, k, a.data(), b_t.data(), c.data(), /*accumulate=*/false);
  expect_near(c, reference_nn(m, n, k, a, b));
}

TEST_P(GemmShapes, TnMatchesReference) {
  const auto [m, n, k] = GetParam();
  seghdc::util::Rng rng(3);
  const auto a_t = random_matrix(k, m, rng);  // A^T stored as [k x m]
  const auto b = random_matrix(k, n, rng);
  std::vector<float> a(m * k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      a[i * k + p] = a_t[p * m + i];
    }
  }
  std::vector<float> c(m * n, 0.0F);
  gemm_tn(m, n, k, a_t.data(), b.data(), c.data(), /*accumulate=*/false);
  expect_near(c, reference_nn(m, n, k, a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{
                          1, 1, 1},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          3, 5, 7},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          16, 16, 16},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          1, 64, 9},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          33, 17, 29}));

TEST(Gemm, AccumulateAddsOnTop) {
  seghdc::util::Rng rng(4);
  const auto a = random_matrix(4, 6, rng);
  const auto b = random_matrix(6, 5, rng);
  std::vector<float> c(4 * 5, 1.0F);
  gemm_nn(4, 5, 6, a.data(), b.data(), c.data(), /*accumulate=*/true);
  const auto product = reference_nn(4, 5, 6, a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], product[i] + 1.0F, 1e-4);
  }
}

TEST(Gemm, OverwriteClearsPreviousContent) {
  seghdc::util::Rng rng(5);
  const auto a = random_matrix(3, 3, rng);
  const auto b = random_matrix(3, 3, rng);
  std::vector<float> c(9, 1234.0F);
  gemm_nn(3, 3, 3, a.data(), b.data(), c.data(), /*accumulate=*/false);
  expect_near(c, reference_nn(3, 3, 3, a, b));
}

TEST(Gemm, ZeroMatrixGivesZero) {
  const std::vector<float> a(4 * 4, 0.0F);
  std::vector<float> b(4 * 4, 3.0F);
  std::vector<float> c(4 * 4, 7.0F);
  gemm_nn(4, 4, 4, a.data(), b.data(), c.data(), /*accumulate=*/false);
  for (const float v : c) {
    EXPECT_EQ(v, 0.0F);
  }
}

}  // namespace
