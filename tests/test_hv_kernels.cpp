// Property tests for the word-parallel kernel layer (src/hdc/kernels):
// the fused HvBlock kernels must agree EXACTLY with the HyperVector /
// Accumulator reference path on random inputs, including dimensions
// that are not multiples of 64 (padding-bit handling is the classic
// failure mode of packed-bit rewrites).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/kmeans.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/fault.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::hdc;

// Dimensions straddling word boundaries: exact multiples, one-off, and
// sub-word sizes.
const std::vector<std::size_t> kDims{8, 63, 64, 65, 100, 127, 128,
                                     193, 512, 1000, 1024, 2049};

TEST(HvKernels, PopcountMatchesReference) {
  util::Rng rng(11);
  for (const auto dim : kDims) {
    const auto hv = HyperVector::random(dim, rng);
    EXPECT_EQ(kernels::popcount_words(hv.words()), hv.popcount())
        << "dim " << dim;
  }
}

TEST(HvKernels, FusedHammingMatchesReference) {
  util::Rng rng(12);
  for (const auto dim : kDims) {
    const auto a = HyperVector::random(dim, rng);
    const auto b = HyperVector::random(dim, rng);
    EXPECT_EQ(kernels::hamming_words(a.words(), b.words()),
              HyperVector::hamming(a, b))
        << "dim " << dim;
    // And against the definition: bitwise comparison.
    std::size_t per_bit = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      per_bit += a.get(i) != b.get(i) ? 1 : 0;
    }
    EXPECT_EQ(kernels::hamming_words(a.words(), b.words()), per_bit)
        << "dim " << dim;
  }
}

TEST(HvKernels, XorMatchesOperator) {
  util::Rng rng(13);
  for (const auto dim : kDims) {
    const auto a = HyperVector::random(dim, rng);
    const auto b = HyperVector::random(dim, rng);
    std::vector<std::uint64_t> dst(kernels::words_for_dim(dim), ~0ULL);
    kernels::xor_words(dst, a.words(), b.words());
    const auto expected = a ^ b;
    EXPECT_EQ(HyperVector::from_words(dim, dst), expected) << "dim " << dim;
  }
}

TEST(HvKernels, DotCountsMatchesAccumulatorReference) {
  util::Rng rng(14);
  for (const auto dim : kDims) {
    Accumulator acc(dim);
    for (int i = 0; i < 7; ++i) {
      acc.add(HyperVector::random(dim, rng),
              static_cast<std::uint32_t>(1 + rng.next_below(5)));
    }
    const auto probe = HyperVector::random(dim, rng);
    // Per-bit reference straight from the definition.
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      if (probe.get(i)) {
        expected += acc.at(i);
      }
    }
    EXPECT_EQ(kernels::dot_counts_words(acc.counts(), probe.words()),
              expected)
        << "dim " << dim;
    EXPECT_EQ(acc.dot(probe), expected) << "dim " << dim;
    EXPECT_EQ(acc.dot(probe.words()), expected) << "dim " << dim;
  }
}

TEST(HvKernels, CosineDistanceMatchesAccumulatorReference) {
  util::Rng rng(15);
  for (const auto dim : kDims) {
    Accumulator acc(dim);
    for (int i = 0; i < 5; ++i) {
      acc.add(HyperVector::random(dim, rng));
    }
    const auto probe = HyperVector::random(dim, rng);
    const double point_norm =
        std::sqrt(static_cast<double>(probe.popcount()));
    EXPECT_DOUBLE_EQ(
        kernels::cosine_distance_words(acc.counts(), acc.norm(),
                                       probe.words(), point_norm),
        acc.cosine_distance(probe))
        << "dim " << dim;
  }
}

TEST(HvKernels, CosineDistanceZeroNormConvention) {
  // Either norm zero -> maximally distant (1.0), matching Accumulator.
  const std::size_t dim = 100;
  Accumulator empty(dim);
  util::Rng rng(16);
  const auto probe = HyperVector::random(dim, rng);
  const HyperVector zeros(dim);
  EXPECT_DOUBLE_EQ(
      kernels::cosine_distance_words(
          empty.counts(), empty.norm(), probe.words(),
          std::sqrt(static_cast<double>(probe.popcount()))),
      1.0);
  Accumulator filled(dim);
  filled.add(probe);
  EXPECT_DOUBLE_EQ(kernels::cosine_distance_words(
                       filled.counts(), filled.norm(), zeros.words(), 0.0),
                   1.0);
}

TEST(HvKernels, AccumulatorSpanAddTracksNormExactly) {
  // The span overload must keep the incremental sum-of-squares (norm)
  // bookkeeping identical to the HyperVector path.
  util::Rng rng(18);
  for (const auto dim : kDims) {
    Accumulator via_hv(dim);
    Accumulator via_span(dim);
    for (int i = 0; i < 6; ++i) {
      const auto hv = HyperVector::random(dim, rng);
      const auto weight = static_cast<std::uint32_t>(1 + rng.next_below(4));
      via_hv.add(hv, weight);
      via_span.add(hv.words(), weight);
    }
    EXPECT_EQ(via_hv.total_weight(), via_span.total_weight());
    EXPECT_DOUBLE_EQ(via_hv.norm(), via_span.norm()) << "dim " << dim;
    for (std::size_t i = 0; i < dim; ++i) {
      ASSERT_EQ(via_hv.at(i), via_span.at(i));
    }
  }
}

TEST(HvKernels, AccumulatorSpanRejectsDirtyPadding) {
  // The span API enforces the zero-padding invariant instead of only
  // documenting it: a stray bit above `dim` would index past counts_.
  Accumulator acc(60);
  std::vector<std::uint64_t> dirty{std::uint64_t{1} << 63};
  EXPECT_THROW(acc.add(std::span<const std::uint64_t>(dirty), 1),
               std::invalid_argument);
  EXPECT_THROW(acc.dot(std::span<const std::uint64_t>(dirty)),
               std::invalid_argument);
  std::vector<std::uint64_t> clean{std::uint64_t{1} << 59};
  acc.add(std::span<const std::uint64_t>(clean), 2);
  EXPECT_EQ(acc.at(59), 2);
  EXPECT_EQ(acc.dot(std::span<const std::uint64_t>(clean)), 2);
}

TEST(HvBlock, FromHvsRoundTrips) {
  util::Rng rng(19);
  for (const auto dim : kDims) {
    std::vector<HyperVector> hvs;
    for (int i = 0; i < 9; ++i) {
      hvs.push_back(HyperVector::random(dim, rng));
    }
    const auto block = HvBlock::from_hvs(hvs);
    ASSERT_EQ(block.count(), hvs.size());
    ASSERT_EQ(block.dim(), dim);
    for (std::size_t i = 0; i < hvs.size(); ++i) {
      EXPECT_EQ(block.to_hypervector(i), hvs[i]) << "dim " << dim;
      EXPECT_EQ(block.popcount(i), hvs[i].popcount());
    }
  }
}

TEST(HvBlock, RowsAreContiguousAndPaddingClean) {
  const std::size_t dim = 100;  // 2 words, 28 padding bits
  util::Rng rng(20);
  std::vector<HyperVector> hvs;
  for (int i = 0; i < 4; ++i) {
    hvs.push_back(HyperVector::random(dim, rng));
  }
  const auto block = HvBlock::from_hvs(hvs);
  EXPECT_EQ(block.words_per_hv(), 2u);
  EXPECT_EQ(block.words().size(), 8u);
  for (std::size_t i = 0; i < block.count(); ++i) {
    const auto row = block.row(i);
    // Row i is a view into the shared storage at offset i*words_per_hv.
    EXPECT_EQ(row.data(), block.words().data() + i * block.words_per_hv());
    // Padding bits above `dim` are zero.
    EXPECT_EQ(row[1] >> (dim % 64), 0u);
  }
}

TEST(HvKernels, FaultInjectionSpanMatchesHyperVectorOverload) {
  for (const auto dim : kDims) {
    util::Rng rng_hv(21);
    util::Rng rng_span(21);
    util::Rng source(static_cast<std::uint64_t>(dim) * 7 + 1);
    auto hv = HyperVector::random(dim, source);
    auto block = HvBlock::from_hvs(std::vector<HyperVector>{hv});
    const auto flips_hv = inject_bit_flips(hv, 0.07, rng_hv);
    const auto flips_span =
        inject_bit_flips(block.row(0), dim, 0.07, rng_span);
    EXPECT_EQ(flips_hv, flips_span) << "dim " << dim;
    EXPECT_EQ(block.to_hypervector(0), hv) << "dim " << dim;
  }
}

TEST(HvKernels, KMeansBlockOverloadMatchesSpanOverload) {
  // The packed-block clusterer is the production path; the HyperVector
  // overload is the reference. Identical inputs -> identical outputs.
  util::Rng rng(22);
  const std::size_t dim = 322;  // deliberately not a multiple of 64
  std::vector<HyperVector> points;
  const auto anchor_a = HyperVector::random(dim, rng);
  const auto anchor_b = HyperVector::random(dim, rng);
  for (int i = 0; i < 30; ++i) {
    auto p = (i % 2 == 0) ? anchor_a : anchor_b;
    for (int f = 0; f < 5; ++f) {
      p.flip(rng.next_below(dim));
    }
    points.push_back(p);
  }
  const core::HvKMeans kmeans(
      core::HvKMeansConfig{.clusters = 2, .iterations = 6});
  const std::vector<std::size_t> seeds{0, 1};
  const auto via_span = kmeans.run(points, {}, seeds);
  const auto via_block = kmeans.run(HvBlock::from_hvs(points), {}, seeds);
  EXPECT_EQ(via_span.assignment, via_block.assignment);
  EXPECT_EQ(via_span.cluster_weights, via_block.cluster_weights);
  EXPECT_EQ(via_span.iterations_run, via_block.iterations_run);
}

}  // namespace
