// Tests for the bit-packed hypervector: the paper's entire encoding
// story rests on flip_range/XOR/Hamming behaving exactly, including at
// 64-bit word boundaries.
#include <gtest/gtest.h>

#include "src/hdc/hypervector.hpp"
#include "src/util/rng.hpp"

namespace {

using seghdc::hdc::HyperVector;
using seghdc::util::Rng;

TEST(HyperVector, ZeroInitialized) {
  const HyperVector hv(100);
  EXPECT_EQ(hv.dim(), 100u);
  EXPECT_EQ(hv.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(hv.get(i));
  }
}

TEST(HyperVector, DefaultIsEmpty) {
  const HyperVector hv;
  EXPECT_TRUE(hv.empty());
  EXPECT_EQ(hv.dim(), 0u);
}

TEST(HyperVector, SetGetFlip) {
  HyperVector hv(70);
  hv.set(0, true);
  hv.set(69, true);
  EXPECT_TRUE(hv.get(0));
  EXPECT_TRUE(hv.get(69));
  EXPECT_EQ(hv.popcount(), 2u);
  hv.flip(0);
  EXPECT_FALSE(hv.get(0));
  hv.set(69, false);
  EXPECT_EQ(hv.popcount(), 0u);
}

TEST(HyperVector, OutOfRangeAccessThrows) {
  HyperVector hv(10);
  EXPECT_THROW(hv.get(10), std::invalid_argument);
  EXPECT_THROW(hv.set(10, true), std::invalid_argument);
  EXPECT_THROW(hv.flip(10), std::invalid_argument);
  EXPECT_THROW(hv.flip_range(5, 11), std::invalid_argument);
  EXPECT_THROW(hv.flip_range(7, 5), std::invalid_argument);
}

TEST(HyperVector, RandomIsBalanced) {
  Rng rng(1);
  const auto hv = HyperVector::random(10000, rng);
  const double density =
      static_cast<double>(hv.popcount()) / static_cast<double>(hv.dim());
  EXPECT_NEAR(density, 0.5, 0.03);
}

TEST(HyperVector, RandomPaddingBitsAreZero) {
  Rng rng(2);
  const auto hv = HyperVector::random(65, rng);  // 2 words, 63 pad bits
  EXPECT_LE(hv.popcount(), 65u);
  const auto words = hv.words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[1] & ~std::uint64_t{1}, 0u);
}

// flip_range across word boundaries is the core primitive of the
// Manhattan encodings — sweep begin/end combinations around them.
class FlipRangeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FlipRangeTest, FlipsExactlyTheRange) {
  const auto [begin, end] = GetParam();
  HyperVector hv(200);
  hv.flip_range(begin, end);
  EXPECT_EQ(hv.popcount(), end - begin);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(hv.get(i), i >= begin && i < end) << "bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WordBoundaries, FlipRangeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 0},
                      std::pair<std::size_t, std::size_t>{0, 1},
                      std::pair<std::size_t, std::size_t>{0, 64},
                      std::pair<std::size_t, std::size_t>{1, 63},
                      std::pair<std::size_t, std::size_t>{63, 65},
                      std::pair<std::size_t, std::size_t>{64, 128},
                      std::pair<std::size_t, std::size_t>{60, 130},
                      std::pair<std::size_t, std::size_t>{0, 200},
                      std::pair<std::size_t, std::size_t>{127, 129},
                      std::pair<std::size_t, std::size_t>{199, 200}));

TEST(HyperVector, FlipRangeIsInvolution) {
  Rng rng(3);
  auto hv = HyperVector::random(300, rng);
  const auto original = hv;
  hv.flip_range(17, 217);
  EXPECT_NE(hv, original);
  hv.flip_range(17, 217);
  EXPECT_EQ(hv, original);
}

TEST(HyperVector, FlipRangeMovesHammingExactly) {
  Rng rng(4);
  const auto original = HyperVector::random(1000, rng);
  for (const std::size_t width : {1u, 7u, 64u, 100u, 321u}) {
    auto flipped = original;
    flipped.flip_range(50, 50 + width);
    EXPECT_EQ(HyperVector::hamming(original, flipped), width);
  }
}

TEST(HyperVector, XorSelfIsZero) {
  Rng rng(5);
  const auto hv = HyperVector::random(500, rng);
  EXPECT_EQ((hv ^ hv).popcount(), 0u);
}

TEST(HyperVector, XorIsCommutativeAndAssociative) {
  Rng rng(6);
  const auto a = HyperVector::random(300, rng);
  const auto b = HyperVector::random(300, rng);
  const auto c = HyperVector::random(300, rng);
  EXPECT_EQ(a ^ b, b ^ a);
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
}

TEST(HyperVector, XorIsSelfInverseBinding) {
  // The HDC binding property: (a ^ b) ^ b recovers a.
  Rng rng(7);
  const auto a = HyperVector::random(300, rng);
  const auto b = HyperVector::random(300, rng);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(HyperVector, XorDimensionMismatchThrows) {
  const HyperVector a(10);
  const HyperVector b(11);
  EXPECT_THROW(a ^ b, std::invalid_argument);
  EXPECT_THROW(HyperVector::hamming(a, b), std::invalid_argument);
}

TEST(HyperVector, HammingBasics) {
  HyperVector a(128);
  HyperVector b(128);
  EXPECT_EQ(HyperVector::hamming(a, b), 0u);
  a.set(3, true);
  b.set(100, true);
  EXPECT_EQ(HyperVector::hamming(a, b), 2u);
  b.set(3, true);
  EXPECT_EQ(HyperVector::hamming(a, b), 1u);
}

TEST(HyperVector, HammingEqualsXorPopcount) {
  Rng rng(8);
  const auto a = HyperVector::random(777, rng);
  const auto b = HyperVector::random(777, rng);
  EXPECT_EQ(HyperVector::hamming(a, b), (a ^ b).popcount());
}

TEST(HyperVector, TwoRandomHvsArePseudoOrthogonal) {
  Rng rng(9);
  const auto a = HyperVector::random(10000, rng);
  const auto b = HyperVector::random(10000, rng);
  const double normalized =
      static_cast<double>(HyperVector::hamming(a, b)) / 10000.0;
  EXPECT_NEAR(normalized, 0.5, 0.03);  // paper Lemma 1's premise
}

class ConcatTest : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConcatTest, PreservesAllBitsAtCorrectOffsets) {
  const auto [d0, d1, d2] = GetParam();
  Rng rng(10);
  std::vector<HyperVector> parts;
  parts.push_back(HyperVector::random(d0, rng));
  parts.push_back(HyperVector::random(d1, rng));
  parts.push_back(HyperVector::random(d2, rng));
  const auto whole = HyperVector::concat(parts);
  ASSERT_EQ(whole.dim(), d0 + d1 + d2);
  std::size_t offset = 0;
  for (const auto& part : parts) {
    for (std::size_t i = 0; i < part.dim(); ++i) {
      EXPECT_EQ(whole.get(offset + i), part.get(i))
          << "offset " << offset << " bit " << i;
    }
    offset += part.dim();
  }
  EXPECT_EQ(whole.popcount(),
            parts[0].popcount() + parts[1].popcount() + parts[2].popcount());
}

INSTANTIATE_TEST_SUITE_P(
    UnalignedSplits, ConcatTest,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::size_t>{
                          64, 64, 64},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          266, 266, 268},  // d=800 RGB split
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          1, 1, 1},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          63, 65, 127},
                      std::tuple<std::size_t, std::size_t, std::size_t>{
                          100, 3, 500}));

TEST(HyperVector, ConcatDistanceIsSumOfPartDistances) {
  // The additivity that makes 3-channel color encoding Manhattan
  // (paper Fig. 4): hamming(concat(a1,a2), concat(b1,b2)) =
  // hamming(a1,b1) + hamming(a2,b2).
  Rng rng(11);
  const auto a1 = HyperVector::random(333, rng);
  const auto a2 = HyperVector::random(467, rng);
  const auto b1 = HyperVector::random(333, rng);
  const auto b2 = HyperVector::random(467, rng);
  const std::vector<HyperVector> a_parts{a1, a2};
  const std::vector<HyperVector> b_parts{b1, b2};
  EXPECT_EQ(HyperVector::hamming(HyperVector::concat(a_parts),
                                 HyperVector::concat(b_parts)),
            HyperVector::hamming(a1, b1) + HyperVector::hamming(a2, b2));
}

TEST(HyperVector, SliceRoundTripsConcat) {
  Rng rng(12);
  const auto a = HyperVector::random(129, rng);
  const auto b = HyperVector::random(71, rng);
  const std::vector<HyperVector> parts{a, b};
  const auto whole = HyperVector::concat(parts);
  EXPECT_EQ(whole.slice(0, 129), a);
  EXPECT_EQ(whole.slice(129, 200), b);
}

TEST(HyperVector, SliceBoundsChecked) {
  const HyperVector hv(10);
  EXPECT_THROW(hv.slice(5, 11), std::invalid_argument);
  EXPECT_THROW(hv.slice(7, 5), std::invalid_argument);
}

TEST(HyperVector, ForEachSetBitVisitsExactlyTheSetBits) {
  HyperVector hv(200);
  const std::vector<std::size_t> expected{0, 1, 63, 64, 65, 128, 199};
  for (const auto i : expected) {
    hv.set(i, true);
  }
  std::vector<std::size_t> visited;
  hv.for_each_set_bit([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

}  // namespace
