// Tests for the Image container.
#include <gtest/gtest.h>

#include "src/imaging/image.hpp"

namespace {

using seghdc::img::ImageU8;
using seghdc::img::LabelMap;

TEST(Image, ConstructionAndFill) {
  ImageU8 image(4, 3, 2, 7);
  EXPECT_EQ(image.width(), 4u);
  EXPECT_EQ(image.height(), 3u);
  EXPECT_EQ(image.channels(), 2u);
  EXPECT_EQ(image.pixel_count(), 12u);
  EXPECT_EQ(image.size(), 24u);
  for (const auto v : image.pixels()) {
    EXPECT_EQ(v, 7);
  }
  image.fill(9);
  EXPECT_EQ(image.at(3, 2, 1), 9);
}

TEST(Image, DefaultIsEmpty) {
  const ImageU8 image;
  EXPECT_TRUE(image.empty());
  EXPECT_EQ(image.size(), 0u);
}

TEST(Image, ZeroDimensionThrows) {
  EXPECT_THROW(ImageU8(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(ImageU8(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(ImageU8(3, 3, 0), std::invalid_argument);
}

TEST(Image, InterleavedLayout) {
  ImageU8 image(2, 2, 3);
  image.at(1, 0, 2) = 42;
  // (y*W + x)*C + c = (0*2+1)*3+2 = 5
  EXPECT_EQ(image.pixels()[5], 42);
  image.at(0, 1, 0) = 13;
  EXPECT_EQ(image.pixels()[6], 13);
}

TEST(Image, AtBoundsChecked) {
  ImageU8 image(2, 2, 1);
  EXPECT_THROW(image.at(2, 0), std::invalid_argument);
  EXPECT_THROW(image.at(0, 2), std::invalid_argument);
  EXPECT_THROW(image.at(0, 0, 1), std::invalid_argument);
}

TEST(Image, ClampedReplicatesBorder) {
  ImageU8 image(3, 3, 1);
  image.at(0, 0) = 10;
  image.at(2, 2) = 20;
  EXPECT_EQ(image.clamped(-5, -5), 10);
  EXPECT_EQ(image.clamped(10, 10), 20);
  EXPECT_EQ(image.clamped(-1, 2), image.at(0, 2));
}

TEST(Image, SameShapeAndEquality) {
  ImageU8 a(3, 2, 1, 0);
  ImageU8 b(3, 2, 1, 0);
  ImageU8 c(2, 3, 1, 0);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  EXPECT_EQ(a, b);
  b.at(1, 1) = 5;
  EXPECT_NE(a, b);
}

TEST(Image, LabelMapHoldsWideValues) {
  LabelMap labels(2, 2, 1);
  labels.at(1, 1) = 1000000u;
  EXPECT_EQ(labels.at(1, 1), 1000000u);
}

}  // namespace
