// Cross-module integration tests: the full Table-I comparison shape on
// one image per dataset, at reduced scale so the suite stays fast.
#include <gtest/gtest.h>

#include "src/baseline/kim_segmenter.hpp"
#include "src/core/seghdc.hpp"
#include "src/datasets/bbbc005.hpp"
#include "src/datasets/dsb2018.hpp"
#include "src/datasets/monuseg.hpp"
#include "src/imaging/filters.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;

core::SegHdcConfig seghdc_config(std::size_t clusters, std::size_t beta) {
  core::SegHdcConfig config;
  config.dim = 1500;
  config.beta = beta;
  config.clusters = clusters;
  config.iterations = 8;
  config.color_quantization_shift = 2;
  return config;
}

TEST(Integration, SegHdcBeatsAblationsOnBbbc005) {
  data::Bbbc005Config data_config;
  data_config.width = 174;
  data_config.height = 130;
  data_config.min_cells = 4;
  data_config.max_cells = 8;
  data_config.min_radius = 8.0;
  data_config.max_radius = 13.0;
  const data::Bbbc005Generator dataset(data_config);
  const auto sample = dataset.generate(0);

  const auto config = seghdc_config(2, 21);
  const auto seghdc_iou = metrics::best_foreground_iou(
      core::SegHdc(config).segment(sample.image).labels, 2, sample.mask)
      .iou;
  const auto rpos_iou = metrics::best_foreground_iou(
      core::SegHdc(config.rpos_variant()).segment(sample.image).labels, 2,
      sample.mask)
      .iou;
  const auto rcolor_iou = metrics::best_foreground_iou(
      core::SegHdc(config.rcolor_variant()).segment(sample.image).labels,
      2, sample.mask)
      .iou;

  // The paper's Table I ordering: SegHDC >> ablations.
  EXPECT_GT(seghdc_iou, 0.75);
  EXPECT_GT(seghdc_iou, rpos_iou + 0.3);
  EXPECT_GT(seghdc_iou, rcolor_iou + 0.3);
}

TEST(Integration, SegHdcSegmentsDsbTileWell) {
  data::Dsb2018Config data_config;
  data_config.width = 160;
  data_config.height = 128;
  data_config.min_nuclei = 6;
  data_config.max_nuclei = 12;
  const data::Dsb2018Generator dataset(data_config);
  const auto sample = dataset.generate(1);
  const auto config = seghdc_config(2, 26);
  const auto result = core::SegHdc(config).segment(sample.image);
  const auto iou =
      metrics::best_foreground_iou(result.labels, 2, sample.mask).iou;
  EXPECT_GT(iou, 0.5);
}

TEST(Integration, MonusegThreeWayClusteringRecoversNuclei) {
  data::MonusegConfig data_config;
  data_config.width = 128;
  data_config.height = 128;
  data_config.min_nuclei = 25;
  data_config.max_nuclei = 45;
  const data::MonusegGenerator dataset(data_config);
  const auto sample = dataset.generate(0);
  const auto config = seghdc_config(3, 26);
  const auto result = core::SegHdc(config).segment(sample.image);
  const auto iou =
      metrics::best_foreground_iou(result.labels, 3, sample.mask).iou;
  // The hardest suite: anything clearly better than chance-level
  // clustering demonstrates the pipeline works end to end.
  EXPECT_GT(iou, 0.3);
}

TEST(Integration, SegHdcOutscoresTinyKimBaselineOnEasyImage) {
  // A small head-to-head mirroring Table I's headline comparison.
  data::Bbbc005Config data_config;
  data_config.width = 128;
  data_config.height = 96;
  data_config.min_cells = 3;
  data_config.max_cells = 6;
  data_config.min_radius = 9.0;
  data_config.max_radius = 13.0;
  const data::Bbbc005Generator dataset(data_config);
  const auto sample = dataset.generate(2);

  const auto seghdc_iou = metrics::best_foreground_iou(
      core::SegHdc(seghdc_config(2, 21)).segment(sample.image).labels, 2,
      sample.mask)
      .iou;

  baseline::KimConfig kim_config;
  kim_config.feature_channels = 12;
  kim_config.max_iterations = 25;
  const auto kim_result =
      baseline::KimSegmenter(kim_config).segment(sample.image);
  const auto kim_iou =
      metrics::best_foreground_iou_any(kim_result.labels, sample.mask).iou;

  EXPECT_GT(seghdc_iou, 0.8);
  EXPECT_GT(seghdc_iou, kim_iou - 0.05);  // SegHDC at least on par
}

TEST(Integration, LabelUpsamplingPathWorks) {
  // The bench harness trains the baseline at reduced resolution and
  // upsamples labels; verify the path end to end.
  data::Dsb2018Config data_config;
  data_config.width = 128;
  data_config.height = 96;
  const data::Dsb2018Generator dataset(data_config);
  const auto sample = dataset.generate(0);

  const auto small = img::resize_bilinear(sample.image, 64, 48);
  baseline::KimConfig kim_config;
  kim_config.feature_channels = 8;
  kim_config.max_iterations = 10;
  auto result = baseline::KimSegmenter(kim_config).segment(small);
  const auto upsampled = img::resize_nearest(result.labels, 128, 96);
  EXPECT_EQ(upsampled.width(), sample.mask.width());
  EXPECT_EQ(upsampled.height(), sample.mask.height());
  const auto matched =
      metrics::best_foreground_iou_any(upsampled, sample.mask);
  EXPECT_GE(matched.iou, 0.0);
  EXPECT_LE(matched.iou, 1.0);
}

TEST(Integration, DeterministicEndToEnd) {
  data::Dsb2018Config data_config;
  data_config.width = 96;
  data_config.height = 64;
  const data::Dsb2018Generator dataset(data_config);
  const auto sample_a = dataset.generate(5);
  const auto sample_b = dataset.generate(5);
  ASSERT_EQ(sample_a.image, sample_b.image);
  const auto config = seghdc_config(2, 26);
  const auto result_a = core::SegHdc(config).segment(sample_a.image);
  const auto result_b = core::SegHdc(config).segment(sample_b.image);
  EXPECT_EQ(result_a.labels, result_b.labels);
}

}  // namespace
