// Tests for the item memories: the classical random codebook (RPos /
// RColor ablations) and the Manhattan level ladder.
#include <gtest/gtest.h>

#include "src/hdc/item_memory.hpp"
#include "src/util/rng.hpp"

namespace {

using seghdc::hdc::HyperVector;
using seghdc::hdc::LevelItemMemory;
using seghdc::hdc::RandomItemMemory;
using seghdc::util::Rng;

TEST(RandomItemMemory, ShapeAndAccess) {
  Rng rng(1);
  const RandomItemMemory memory(512, 16, rng);
  EXPECT_EQ(memory.dim(), 512u);
  EXPECT_EQ(memory.size(), 16u);
  EXPECT_EQ(memory.at(0).dim(), 512u);
  EXPECT_THROW(memory.at(16), std::invalid_argument);
}

TEST(RandomItemMemory, SymbolsArePseudoOrthogonal) {
  Rng rng(2);
  const RandomItemMemory memory(8192, 8, rng);
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a + 1; b < 8; ++b) {
      const double normalized =
          static_cast<double>(
              HyperVector::hamming(memory.at(a), memory.at(b))) /
          8192.0;
      EXPECT_NEAR(normalized, 0.5, 0.04) << a << " vs " << b;
    }
  }
}

TEST(RandomItemMemory, RejectsDegenerateArguments) {
  Rng rng(3);
  EXPECT_THROW(RandomItemMemory(0, 4, rng), std::invalid_argument);
  EXPECT_THROW(RandomItemMemory(16, 0, rng), std::invalid_argument);
}

TEST(LevelItemMemory, PaperLadderExactUnits) {
  // The paper's color ladder: uc = floor(d/256); span = 255*uc gives
  // hamming(v_a, v_b) = |a-b| * uc exactly.
  Rng rng(4);
  const std::size_t d = 2048;
  const std::size_t uc = d / 256;  // 8
  const LevelItemMemory ladder(d, 256, 255 * uc, rng);
  EXPECT_EQ(HyperVector::hamming(ladder.at(0), ladder.at(1)), uc);
  EXPECT_EQ(HyperVector::hamming(ladder.at(0), ladder.at(255)), 255 * uc);
  EXPECT_EQ(HyperVector::hamming(ladder.at(10), ladder.at(30)), 20 * uc);
}

class LevelLadderTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(LevelLadderTest, HammingEqualsOffsetDifference) {
  const auto [dim, levels, span] = GetParam();
  Rng rng(5);
  const LevelItemMemory ladder(dim, levels, span, rng);
  // Manhattan property on a sample of level pairs.
  for (std::size_t a = 0; a < levels; a += levels / 7 + 1) {
    for (std::size_t b = 0; b < levels; b += levels / 5 + 1) {
      const std::size_t expected = a > b
                                       ? ladder.offset(a) - ladder.offset(b)
                                       : ladder.offset(b) - ladder.offset(a);
      EXPECT_EQ(HyperVector::hamming(ladder.at(a), ladder.at(b)), expected)
          << "levels " << a << ", " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSpans, LevelLadderTest,
    ::testing::Values(
        std::tuple<std::size_t, std::size_t, std::size_t>{2048, 256,
                                                          255 * 8},
        std::tuple<std::size_t, std::size_t, std::size_t>{266, 256, 264},
        std::tuple<std::size_t, std::size_t, std::size_t>{100, 256, 99},
        std::tuple<std::size_t, std::size_t, std::size_t>{512, 16, 480},
        std::tuple<std::size_t, std::size_t, std::size_t>{64, 2, 64}));

TEST(LevelItemMemory, OffsetsAreMonotoneNonDecreasing) {
  Rng rng(6);
  const LevelItemMemory ladder(300, 256, 299, rng);
  for (std::size_t k = 1; k < 256; ++k) {
    EXPECT_GE(ladder.offset(k), ladder.offset(k - 1));
  }
  EXPECT_EQ(ladder.offset(0), 0u);
  EXPECT_EQ(ladder.offset(255), 299u);
}

TEST(LevelItemMemory, RegionBeginShiftsFlips) {
  Rng rng(7);
  const std::size_t d = 256;
  const LevelItemMemory ladder(d, 4, 30, rng, /*region_begin=*/100);
  // All flips live in [100, 130): bits outside must agree across levels.
  const auto& low = ladder.at(0);
  const auto& high = ladder.at(3);
  for (std::size_t i = 0; i < d; ++i) {
    if (i < 100 || i >= 130) {
      EXPECT_EQ(low.get(i), high.get(i)) << "bit " << i;
    }
  }
  EXPECT_EQ(HyperVector::hamming(low, high), 30u);
}

TEST(LevelItemMemory, DistantLevelsFarCloseLevelsNear) {
  Rng rng(8);
  const LevelItemMemory ladder(2560, 256, 2550, rng);
  const auto near = HyperVector::hamming(ladder.at(100), ladder.at(101));
  const auto far = HyperVector::hamming(ladder.at(0), ladder.at(200));
  EXPECT_LT(near, far);
}

TEST(LevelItemMemory, RejectsDegenerateArguments) {
  Rng rng(9);
  EXPECT_THROW(LevelItemMemory(0, 4, 0, rng), std::invalid_argument);
  EXPECT_THROW(LevelItemMemory(64, 1, 10, rng), std::invalid_argument);
  EXPECT_THROW(LevelItemMemory(64, 4, 65, rng), std::invalid_argument);
  EXPECT_THROW(LevelItemMemory(64, 4, 30, rng, /*region_begin=*/40),
               std::invalid_argument);
}

TEST(LevelItemMemory, AccessorsValidateRange) {
  Rng rng(10);
  const LevelItemMemory ladder(64, 4, 30, rng);
  EXPECT_THROW(ladder.at(4), std::invalid_argument);
  EXPECT_THROW(ladder.offset(4), std::invalid_argument);
}

}  // namespace
