// Tests for the CNN baseline (Kim et al., TIP 2020) on top of the NN
// runtime: training reduces the loss, the label map is well-formed, and
// early stopping triggers on label collapse.
#include <gtest/gtest.h>

#include "src/baseline/kim_segmenter.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::baseline;

/// Small two-tone test image.
img::ImageU8 make_card(std::size_t size, std::size_t channels) {
  img::ImageU8 image(size, size, channels, 30);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      for (std::size_t c = 0; c < channels; ++c) {
        image(x, y, c) = 210;
      }
    }
  }
  return image;
}

KimConfig tiny_config() {
  KimConfig config;
  config.feature_channels = 8;
  config.conv_layers = 2;
  config.max_iterations = 12;
  config.min_labels = 2;
  return config;
}

TEST(KimSegmenter, ProducesWellFormedLabelMap) {
  const auto image = make_card(24, 3);
  const KimSegmenter segmenter(tiny_config());
  const auto result = segmenter.segment(image);
  EXPECT_EQ(result.labels.width(), 24u);
  EXPECT_EQ(result.labels.height(), 24u);
  EXPECT_GE(result.label_count, 1u);
  EXPECT_LE(result.label_count, 8u);
  // Labels are compacted to 0..L-1.
  for (const auto v : result.labels.pixels()) {
    EXPECT_LT(v, result.label_count);
  }
}

TEST(KimSegmenter, LossDecreasesOverTraining) {
  const auto image = make_card(24, 1);
  auto config = tiny_config();
  config.max_iterations = 20;
  config.min_labels = 1;  // never early-stop
  const KimSegmenter segmenter(config);
  const auto result = segmenter.segment(image);
  ASSERT_GE(result.loss_history.size(), 10u);
  // Compare the first and last thirds of the loss history.
  double early = 0.0;
  double late = 0.0;
  const std::size_t third = result.loss_history.size() / 3;
  for (std::size_t i = 0; i < third; ++i) {
    early += result.loss_history[i];
    late += result.loss_history[result.loss_history.size() - 1 - i];
  }
  EXPECT_LT(late, early);
}

TEST(KimSegmenter, EarlyStopsWhenLabelsCollapse) {
  const auto image = make_card(20, 1);
  auto config = tiny_config();
  config.min_labels = 100;  // impossible to satisfy -> stop immediately
  const KimSegmenter segmenter(config);
  const auto result = segmenter.segment(image);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.iterations_run, 1u);
}

TEST(KimSegmenter, DeterministicGivenSeed) {
  const auto image = make_card(20, 1);
  const KimSegmenter segmenter(tiny_config());
  const auto a = segmenter.segment(image);
  const auto b = segmenter.segment(image);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
}

TEST(KimSegmenter, SeedChangesInitialization) {
  const auto image = make_card(20, 1);
  auto config_a = tiny_config();
  auto config_b = tiny_config();
  config_b.seed = 999;
  const auto a = KimSegmenter(config_a).segment(image);
  const auto b = KimSegmenter(config_b).segment(image);
  // Different inits explore different label assignments (they may
  // coincide semantically, but the raw loss paths differ).
  ASSERT_FALSE(a.loss_history.empty());
  ASSERT_FALSE(b.loss_history.empty());
  EXPECT_NE(a.loss_history.front(), b.loss_history.front());
}

TEST(KimSegmenter, SegmentsEasyCardReasonably) {
  // On a crisp two-tone card, even a tiny run should align labels with
  // the square decently.
  const auto image = make_card(32, 1);
  img::ImageU8 truth(32, 32, 1, 0);
  for (std::size_t y = 8; y < 24; ++y) {
    for (std::size_t x = 8; x < 24; ++x) {
      truth.at(x, y) = 255;
    }
  }
  auto config = tiny_config();
  config.max_iterations = 30;
  const auto result = KimSegmenter(config).segment(image);
  const auto matched =
      metrics::best_foreground_iou_any(result.labels, truth);
  EXPECT_GT(matched.iou, 0.5);
}

TEST(KimSegmenter, ValidatesConfig) {
  KimConfig config;
  config.feature_channels = 1;
  EXPECT_THROW(KimSegmenter{config}, std::invalid_argument);
  config = KimConfig{};
  config.conv_layers = 0;
  EXPECT_THROW(KimSegmenter{config}, std::invalid_argument);
  config = KimConfig{};
  config.learning_rate = 0.0;
  EXPECT_THROW(KimSegmenter{config}, std::invalid_argument);
  config = KimConfig{};
  config.momentum = 1.0;
  EXPECT_THROW(KimSegmenter{config}, std::invalid_argument);
}

TEST(KimSegmenter, RejectsUnsupportedImages) {
  const KimSegmenter segmenter(tiny_config());
  const img::ImageU8 two_channel(8, 8, 2, 0);
  EXPECT_THROW(segmenter.segment(two_channel), std::invalid_argument);
  const img::ImageU8 tiny(1, 1, 1, 0);
  EXPECT_THROW(segmenter.segment(tiny), std::invalid_argument);
}

TEST(KimSegmenter, TotalMacsFormula) {
  KimConfig config;  // 100 channels, 2 conv layers
  // Reference workload of paper Table II: 3x256x320, 1000 iterations.
  const auto macs = KimSegmenter::total_macs(config, 3, 256, 320, 1000);
  const std::uint64_t hw = 256ULL * 320;
  const std::uint64_t fwd =
      hw * 3 * 100 * 9 + hw * 100 * 100 * 9 + hw * 100 * 100;
  EXPECT_EQ(macs, fwd * 3 * 1000);
}

TEST(CompactLabels, RenumbersDenselyStable) {
  img::LabelMap labels(4, 1, 1, 0);
  labels.at(0, 0) = 7;
  labels.at(1, 0) = 3;
  labels.at(2, 0) = 7;
  labels.at(3, 0) = 11;
  const auto count = compact_labels(labels);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels.at(0, 0), 0u);  // first seen -> 0
  EXPECT_EQ(labels.at(1, 0), 1u);
  EXPECT_EQ(labels.at(2, 0), 0u);
  EXPECT_EQ(labels.at(3, 0), 2u);
}

}  // namespace
