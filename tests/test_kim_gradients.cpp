// Whole-network numerical gradient check: a miniature Kim architecture
// (conv -> ReLU -> BN -> 1x1 conv -> BN) with the combined
// cross-entropy + continuity loss, differentiated end to end and
// compared against central differences. This is the strongest
// correctness statement the NN runtime can make: if this passes, the
// baseline's training loop optimises the true gradient.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/loss.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::nn;
using seghdc::util::Rng;

/// A fixed-architecture miniature net with externally owned weights so
/// the check can perturb them.
struct MiniNet {
  Conv2d conv;
  ReLU relu;
  BatchNorm2d norm;
  Conv2d head;
  BatchNorm2d head_norm;

  explicit MiniNet(Rng& rng)
      : conv(1, 4, 3, rng), norm(4), head(4, 4, 1, rng), head_norm(4) {}

  Tensor forward(const Tensor& input) {
    return head_norm.forward(head.forward(norm.forward(
        relu.forward(conv.forward(input)))));
  }

  void zero_grad() {
    conv.zero_grad();
    norm.zero_grad();
    head.zero_grad();
    head_norm.zero_grad();
  }

  void backward(const Tensor& grad) {
    conv.backward(relu.backward(norm.backward(
        head.backward(head_norm.backward(grad)))));
  }
};

/// Kim-style loss against FIXED targets (argmax would change under
/// perturbation and break differentiability of the check).
double loss_of(MiniNet& net, const Tensor& input,
               const std::vector<std::uint32_t>& targets) {
  const Tensor response = net.forward(input);
  const auto similarity = softmax_cross_entropy(response, targets);
  const auto continuity = continuity_loss(response);
  return similarity.loss + continuity.loss;
}

TEST(KimGradients, EndToEndWeightGradientsMatchNumerical) {
  Rng rng(11);
  MiniNet net(rng);
  Tensor input(1, 6, 6);
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.next_double());
  }
  const Tensor probe_response = net.forward(input);
  const auto targets = argmax_labels(probe_response);

  // Analytic gradient of the combined loss.
  const Tensor response = net.forward(input);
  const auto similarity = softmax_cross_entropy(response, targets);
  const auto continuity = continuity_loss(response);
  Tensor grad(response.channels(), response.height(), response.width());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] =
        similarity.grad.data()[i] + continuity.grad.data()[i];
  }
  net.zero_grad();
  net.backward(grad);

  // The continuity term's L1 subgradient is only piecewise smooth, so
  // tolerances are loose; the CE term dominates at init.
  const double h = 1e-3;
  const auto check_param = [&](std::span<float> params,
                               std::span<float> grads, std::size_t index,
                               const char* name) {
    const float saved = params[index];
    params[index] = saved + static_cast<float>(h);
    const double plus = loss_of(net, input, targets);
    params[index] = saved - static_cast<float>(h);
    const double minus = loss_of(net, input, targets);
    params[index] = saved;
    const double numerical = (plus - minus) / (2.0 * h);
    EXPECT_NEAR(grads[index], numerical, 2e-2) << name << "[" << index
                                               << "]";
  };

  check_param(net.conv.weights(), net.conv.weight_grad(), 0, "conv.w");
  check_param(net.conv.weights(), net.conv.weight_grad(), 17, "conv.w");
  check_param(net.conv.bias(), net.conv.bias_grad(), 2, "conv.b");
  check_param(net.norm.gamma(), net.norm.gamma_grad(), 1, "bn.gamma");
  check_param(net.norm.beta(), net.norm.beta_grad(), 3, "bn.beta");
  check_param(net.head.weights(), net.head.weight_grad(), 5, "head.w");
  check_param(net.head_norm.gamma(), net.head_norm.gamma_grad(), 0,
              "head_bn.gamma");
  check_param(net.head_norm.beta(), net.head_norm.beta_grad(), 2,
              "head_bn.beta");
}

TEST(KimGradients, GradientDescentOnFixedTargetsReducesLoss) {
  // One more dynamical check: repeated steps against FIXED pseudo-labels
  // must reduce the combined loss monotonically-ish.
  Rng rng(13);
  MiniNet net(rng);
  Tensor input(1, 8, 8);
  for (auto& v : input.values()) {
    v = static_cast<float>(rng.next_double());
  }
  const auto targets = argmax_labels(net.forward(input));

  double first_loss = 0.0;
  double last_loss = 0.0;
  const float lr = 0.05F;
  for (int step = 0; step < 12; ++step) {
    const Tensor response = net.forward(input);
    const auto similarity = softmax_cross_entropy(response, targets);
    const auto continuity = continuity_loss(response);
    const double loss = similarity.loss + continuity.loss;
    if (step == 0) {
      first_loss = loss;
    }
    last_loss = loss;
    Tensor grad(response.channels(), response.height(), response.width());
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] =
          similarity.grad.data()[i] + continuity.grad.data()[i];
    }
    net.zero_grad();
    net.backward(grad);
    // Plain SGD on every parameter group.
    const auto apply = [lr](std::span<float> params,
                            std::span<float> grads) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] -= lr * grads[i];
      }
    };
    apply(net.conv.weights(), net.conv.weight_grad());
    apply(net.conv.bias(), net.conv.bias_grad());
    apply(net.norm.gamma(), net.norm.gamma_grad());
    apply(net.norm.beta(), net.norm.beta_grad());
    apply(net.head.weights(), net.head.weight_grad());
    apply(net.head.bias(), net.head.bias_grad());
    apply(net.head_norm.gamma(), net.head_norm.gamma_grad());
    apply(net.head_norm.beta(), net.head_norm.beta_grad());
  }
  EXPECT_LT(last_loss, first_loss);
}

}  // namespace
