// Tests for the hypervector K-Means clusterer (paper Section III-④).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/kmeans.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

/// Two well-separated families of HVs: perturbations (few flips) of two
/// random anchors.
struct TwoClusterData {
  std::vector<hdc::HyperVector> points;
  std::vector<std::size_t> truth;  ///< 0 or 1 per point
};

TwoClusterData make_two_clusters(std::size_t per_cluster, std::size_t dim,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  TwoClusterData data;
  const auto anchor_a = hdc::HyperVector::random(dim, rng);
  const auto anchor_b = hdc::HyperVector::random(dim, rng);
  for (std::size_t i = 0; i < per_cluster; ++i) {
    auto a = anchor_a;
    auto b = anchor_b;
    // Perturb ~2% of the bits.
    for (std::size_t f = 0; f < dim / 50; ++f) {
      a.flip(rng.next_below(dim));
      b.flip(rng.next_below(dim));
    }
    data.points.push_back(a);
    data.truth.push_back(0);
    data.points.push_back(b);
    data.truth.push_back(1);
  }
  return data;
}

/// Fraction of points whose assignment agrees with the ground truth
/// under the better of the two label polarities.
double clustering_accuracy(const std::vector<std::uint32_t>& assignment,
                           const std::vector<std::size_t>& truth) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    agree += assignment[i] == truth[i] ? 1 : 0;
  }
  const double direct =
      static_cast<double>(agree) / static_cast<double>(truth.size());
  return std::max(direct, 1.0 - direct);
}

TEST(HvKMeans, SeparatesTwoClusters) {
  const auto data = make_two_clusters(40, 2048, 1);
  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 10});
  const std::vector<std::size_t> seeds{0, 1};  // one from each family
  const auto result = kmeans.run(data.points, {}, seeds);
  EXPECT_GE(clustering_accuracy(result.assignment, data.truth), 0.99);
  EXPECT_EQ(result.iterations_run, 10u);
}

TEST(HvKMeans, HammingDistanceVariantAlsoSeparates) {
  const auto data = make_two_clusters(40, 2048, 2);
  const HvKMeans kmeans(HvKMeansConfig{
      .clusters = 2, .iterations = 10,
      .distance = ClusterDistance::kHamming});
  const std::vector<std::size_t> seeds{0, 1};
  const auto result = kmeans.run(data.points, {}, seeds);
  EXPECT_GE(clustering_accuracy(result.assignment, data.truth), 0.99);
}

TEST(HvKMeans, WeightedDedupEquivalentToExpandedPoints) {
  // The engineering claim behind the pipeline's dedup: clustering unique
  // points with multiplicities == clustering the expanded multiset.
  util::Rng rng(3);
  std::vector<hdc::HyperVector> unique_points;
  std::vector<std::uint32_t> weights{5, 3, 7, 2, 4, 6};
  for (std::size_t i = 0; i < weights.size(); ++i) {
    unique_points.push_back(hdc::HyperVector::random(512, rng));
  }
  std::vector<hdc::HyperVector> expanded;
  std::vector<std::size_t> expanded_of_unique;
  for (std::size_t u = 0; u < unique_points.size(); ++u) {
    for (std::uint32_t w = 0; w < weights[u]; ++w) {
      expanded.push_back(unique_points[u]);
      expanded_of_unique.push_back(u);
    }
  }

  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 6});
  const std::vector<std::size_t> unique_seeds{0, 2};
  // Seed the expanded run with copies of the same two uniques.
  std::vector<std::size_t> expanded_seeds;
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    if ((expanded_of_unique[i] == 0 || expanded_of_unique[i] == 2) &&
        (expanded_seeds.empty() ||
         expanded_of_unique[expanded_seeds.back()] !=
             expanded_of_unique[i])) {
      expanded_seeds.push_back(i);
    }
  }
  ASSERT_EQ(expanded_seeds.size(), 2u);

  const auto dedup_result = kmeans.run(unique_points, weights, unique_seeds);
  const auto full_result = kmeans.run(expanded, {}, expanded_seeds);

  for (std::size_t i = 0; i < expanded.size(); ++i) {
    EXPECT_EQ(full_result.assignment[i],
              dedup_result.assignment[expanded_of_unique[i]])
        << "expanded point " << i;
  }
}

TEST(HvKMeans, ClusterWeightsSumToTotal) {
  const auto data = make_two_clusters(10, 256, 4);
  std::vector<std::uint32_t> weights(data.points.size(), 3);
  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 3});
  const auto result = kmeans.run(data.points, weights,
                                 std::vector<std::size_t>{0, 1});
  EXPECT_EQ(result.cluster_weights[0] + result.cluster_weights[1],
            3 * data.points.size());
}

TEST(HvKMeans, EmptyClusterGetsReseeded) {
  // Three seeds but only two genuine families: one cluster will go
  // empty and must be repaired rather than staying dead.
  const auto data = make_two_clusters(20, 1024, 5);
  const HvKMeans kmeans(HvKMeansConfig{.clusters = 3, .iterations = 8});
  const auto result = kmeans.run(data.points, {},
                                 std::vector<std::size_t>{0, 1, 2});
  std::size_t nonempty = 0;
  for (const auto w : result.cluster_weights) {
    nonempty += w > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonempty, 3u);
}

TEST(HvKMeans, DeterministicAcrossRuns) {
  const auto data = make_two_clusters(15, 512, 6);
  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 5});
  const auto a = kmeans.run(data.points, {}, std::vector<std::size_t>{0, 1});
  const auto b = kmeans.run(data.points, {}, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(a.assignment, b.assignment);
}

// --- Parallel update step (per-chunk partial accumulators). ---

/// Full-result comparison: everything a caller can observe must match.
void expect_kmeans_results_identical(const HvKMeansResult& a,
                                     const HvKMeansResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cluster_weights, b.cluster_weights);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.reseeds, b.reseeds);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t c = 0; c < a.centroids.size(); ++c) {
    EXPECT_TRUE(std::ranges::equal(a.centroids[c].counts(),
                                   b.centroids[c].counts()))
        << "centroid " << c;
    EXPECT_EQ(a.centroids[c].total_weight(), b.centroids[c].total_weight());
    EXPECT_DOUBLE_EQ(a.centroids[c].norm(), b.centroids[c].norm());
  }
}

TEST(HvKMeans, ParallelUpdateMatchesSequentialReference) {
  // The parallel update (chunked partial accumulators, merged in chunk
  // order) must leave exactly the centroids a sequential re-accumulation
  // of the final assignment produces. Weighted points included so the
  // partials exercise weight handling.
  const auto data = make_two_clusters(40, 1024, 11);
  std::vector<std::uint32_t> weights(data.points.size(), 1);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1 + static_cast<std::uint32_t>(i % 5);
  }
  util::ThreadPool pool(8);
  HvKMeansConfig config{.clusters = 2, .iterations = 6};
  config.pool = &pool;
  const auto result = HvKMeans(config).run(data.points, weights,
                                           std::vector<std::size_t>{0, 1});
  ASSERT_EQ(result.reseeds, 0u)
      << "reference recomputation assumes no reseed patch";

  const std::size_t dim = data.points[0].dim();
  std::vector<seghdc::hdc::Accumulator> reference(
      2, seghdc::hdc::Accumulator(dim));
  std::vector<std::uint64_t> reference_weights(2, 0);
  for (std::size_t i = 0; i < data.points.size(); ++i) {
    reference[result.assignment[i]].add(data.points[i], weights[i]);
    reference_weights[result.assignment[i]] += weights[i];
  }
  EXPECT_EQ(result.cluster_weights, reference_weights);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_TRUE(std::ranges::equal(result.centroids[c].counts(),
                                   reference[c].counts()))
        << "centroid " << c;
    EXPECT_DOUBLE_EQ(result.centroids[c].norm(), reference[c].norm());
  }
}

TEST(HvKMeans, DeterministicAcrossThreadCounts) {
  const auto data = make_two_clusters(30, 768, 12);
  std::vector<std::uint32_t> weights(data.points.size(), 1);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1 + static_cast<std::uint32_t>((i * 7) % 4);
  }
  HvKMeansConfig config{.clusters = 2, .iterations = 5};
  util::ThreadPool reference_pool(1);
  config.pool = &reference_pool;
  const auto reference = HvKMeans(config).run(
      data.points, weights, std::vector<std::size_t>{0, 1});
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    util::ThreadPool pool(threads);
    config.pool = &pool;
    const auto result = HvKMeans(config).run(
        data.points, weights, std::vector<std::size_t>{0, 1});
    expect_kmeans_results_identical(reference, result);
  }
}

TEST(HvKMeans, ReseedPathDeterministicAcrossThreadCounts) {
  // Seed 2 duplicates seed 0's point, so every point ties between
  // centroids 0 and 2, the tie-break (lowest index) starves cluster 2,
  // and the empty-cluster repair must fire. The reseed choice (farthest
  // point, lowest index) and the patched centroids must not depend on
  // the thread count.
  auto data = make_two_clusters(20, 1024, 5);
  data.points[2] = data.points[0];
  HvKMeansConfig config{.clusters = 3, .iterations = 8};
  util::ThreadPool reference_pool(1);
  config.pool = &reference_pool;
  const auto reference = HvKMeans(config).run(
      data.points, {}, std::vector<std::size_t>{0, 1, 2});
  EXPECT_GT(reference.reseeds, 0u)
      << "test data no longer exercises the reseed path";
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    util::ThreadPool pool(threads);
    config.pool = &pool;
    const auto result = HvKMeans(config).run(
        data.points, {}, std::vector<std::size_t>{0, 1, 2});
    expect_kmeans_results_identical(reference, result);
  }
}

TEST(HvKMeans, ExplicitPoolMatchesSharedPool) {
  const auto data = make_two_clusters(15, 512, 13);
  const HvKMeans shared_pool_kmeans(
      HvKMeansConfig{.clusters = 2, .iterations = 5});
  const auto expected = shared_pool_kmeans.run(
      data.points, {}, std::vector<std::size_t>{0, 1});
  util::ThreadPool pool(4);
  HvKMeansConfig config{.clusters = 2, .iterations = 5};
  config.pool = &pool;
  const auto actual = HvKMeans(config).run(data.points, {},
                                           std::vector<std::size_t>{0, 1});
  expect_kmeans_results_identical(expected, actual);
}

TEST(HvKMeans, OpsAccounting) {
  const auto data = make_two_clusters(8, 256, 7);
  // Pins the exhaustive-mode formulas, so force that mode explicitly —
  // an SEGHDC_ASSIGN_MODE=pruned environment (the CI matrix sets it)
  // must not flip this run onto the measured accounting, which
  // test_kmeans_pruned pins separately.
  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2,
                                       .iterations = 4,
                                       .assign_mode = AssignMode::kExhaustive});
  const auto result = kmeans.run(data.points, {},
                                 std::vector<std::size_t>{0, 1});
  const std::uint64_t n = data.points.size();
  EXPECT_EQ(result.ops.dot_adds, n * 2 * 256 * 4);
  EXPECT_EQ(result.ops.centroid_update_adds, n * 256 * 4);
  EXPECT_EQ(result.ops.distance_evals, n * 2 * 4);
}

TEST(HvKMeans, ValidatesArguments) {
  EXPECT_THROW(HvKMeans(HvKMeansConfig{.clusters = 1}),
               std::invalid_argument);
  EXPECT_THROW(HvKMeans(HvKMeansConfig{.clusters = 2, .iterations = 0}),
               std::invalid_argument);

  const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 1});
  util::Rng rng(8);
  std::vector<hdc::HyperVector> one{hdc::HyperVector::random(64, rng)};
  EXPECT_THROW(kmeans.run(one, {}, std::vector<std::size_t>{0, 0}),
               std::invalid_argument);

  std::vector<hdc::HyperVector> two{hdc::HyperVector::random(64, rng),
                                    hdc::HyperVector::random(64, rng)};
  EXPECT_THROW(kmeans.run(two, {}, std::vector<std::size_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(kmeans.run(two, {}, std::vector<std::size_t>{0, 5}),
               std::invalid_argument);
  const std::vector<std::uint32_t> bad_weights{1};
  EXPECT_THROW(kmeans.run(two, bad_weights, std::vector<std::size_t>{0, 1}),
               std::invalid_argument);
}

TEST(LargestColorDifferenceSeeds, PicksMinAndMaxFirst) {
  const std::vector<std::uint8_t> intensities{50, 10, 200, 120, 10, 200};
  const auto seeds = largest_color_difference_seeds(intensities, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(intensities[seeds[0]], 200);  // max first
  EXPECT_EQ(intensities[seeds[1]], 10);   // then min
  EXPECT_EQ(seeds[0], 2u);  // first occurrence wins ties
  EXPECT_EQ(seeds[1], 1u);
}

TEST(LargestColorDifferenceSeeds, ThirdSeedMaximizesMinGap) {
  const std::vector<std::uint8_t> intensities{0, 255, 128, 100, 20};
  const auto seeds = largest_color_difference_seeds(intensities, 3);
  ASSERT_EQ(seeds.size(), 3u);
  // 128 has min-gap 127 to {0, 255}; all others are closer to one end.
  EXPECT_EQ(intensities[seeds[2]], 128);
}

TEST(LargestColorDifferenceSeeds, FlatImageFallsBackToDistinctIndices) {
  const std::vector<std::uint8_t> intensities(10, 42);
  const auto seeds = largest_color_difference_seeds(intensities, 3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
  EXPECT_NE(seeds[0], seeds[2]);
}

TEST(LargestColorDifferenceSeeds, SeedsAreDistinct) {
  const std::vector<std::uint8_t> intensities{5, 9, 9, 9, 250};
  const auto seeds = largest_color_difference_seeds(intensities, 4);
  for (std::size_t a = 0; a < seeds.size(); ++a) {
    for (std::size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]);
    }
  }
}

TEST(LargestColorDifferenceSeeds, ValidatesArguments) {
  const std::vector<std::uint8_t> two{1, 2};
  EXPECT_THROW(largest_color_difference_seeds(two, 1),
               std::invalid_argument);
  EXPECT_THROW(largest_color_difference_seeds(two, 3),
               std::invalid_argument);
}

}  // namespace
