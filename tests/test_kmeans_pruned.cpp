// Tests for the candidate-pruned K-Means assignment and the bounded
// kernels underneath it. The contract under test is strict: pruning is
// EXACT — labels, centroids, changed-counts, reseeds, and convergence
// must be bit-identical to the exhaustive argmin (ties broken by the
// lowest index) at every registered backend, pool size, and cluster
// count, and the PR-2 golden batch hash 13206585988845182882 and PR-6
// golden stream hash 6522647722573592175 must survive with pruning
// forced on. Anything weaker would make AssignMode a semantics knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/kmeans.hpp"
#include "src/core/session.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/imaging/image.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

/// Leaves the process-wide backend selection exactly as a test found it.
struct BackendSelectionGuard {
  ~BackendSelectionGuard() { hdc::simd::reset_backend_selection(); }
};

/// Restores (or removes) SEGHDC_ASSIGN_MODE on scope exit.
struct AssignModeEnvGuard {
  std::string saved;
  bool had = false;
  AssignModeEnvGuard() {
    const char* value = std::getenv("SEGHDC_ASSIGN_MODE");
    if (value != nullptr) {
      had = true;
      saved = value;
    }
  }
  ~AssignModeEnvGuard() {
    if (had) {
      setenv("SEGHDC_ASSIGN_MODE", saved.c_str(), 1);
    } else {
      unsetenv("SEGHDC_ASSIGN_MODE");
    }
  }
};

// ---------------------------------------------------------------------
// Bounded-kernel property suite: every registered backend must honour
// the one-sided BoundedScan contract against a plain per-word reference,
// including non-multiple-of-64 dimensions (ragged vector tails) and
// bounds that land exactly on block boundaries.

std::size_t reference_hamming(std::span<const std::uint64_t> a,
                              std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

std::size_t reference_and_popcount(std::span<const std::uint64_t> a,
                                   std::span<const std::uint64_t> b) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

TEST(BoundedKernels, HammingBoundedHonoursContractOnEveryBackend) {
  util::Rng rng(17);
  for (const std::size_t dim : {64u, 100u, 192u, 1000u, 1041u}) {
    const auto a = hdc::HyperVector::random(dim, rng);
    const auto b = hdc::HyperVector::random(dim, rng);
    const auto aw = a.words();
    const auto bw = b.words();
    const std::size_t exact = reference_hamming(aw, bw);

    // Bound menu: degenerate, around the exact value, unbounded, and
    // every 8-word prefix count (a bound met exactly at a block edge is
    // the off-by-one habitat of early-exit kernels).
    std::vector<std::size_t> bounds{0, 1, exact, exact + 1, kUnbounded};
    if (exact > 0) {
      bounds.push_back(exact - 1);
    }
    std::size_t prefix = 0;
    for (std::size_t w = 0; w < aw.size(); ++w) {
      prefix += static_cast<std::size_t>(std::popcount(aw[w] ^ bw[w]));
      if ((w + 1) % 8 == 0) {
        bounds.push_back(prefix);
      }
    }

    for (const auto* backend : hdc::simd::registered_backends()) {
      if (!backend->available()) {
        continue;
      }
      for (const std::size_t bound : bounds) {
        SCOPED_TRACE(std::string(backend->name) + " dim " +
                     std::to_string(dim) + " bound " + std::to_string(bound));
        const auto scan = backend->hamming_bounded(aw, bw, bound);
        // The running count only ever grows toward the exact distance.
        EXPECT_LE(scan.value, exact);
        EXPECT_LE(scan.words_scanned, aw.size());
        if (scan.value < bound) {
          // Completed scan: the value is the exact distance.
          EXPECT_EQ(scan.value, exact);
          EXPECT_EQ(scan.words_scanned, aw.size());
        } else {
          // Aborted (or exactly-at-bound) scan: the true distance is
          // provably >= bound.
          EXPECT_GE(exact, bound);
        }
      }
    }
  }
}

TEST(BoundedKernels, AndPopcountCappedHonoursContractOnEveryBackend) {
  util::Rng rng(18);
  for (const std::size_t dim : {64u, 100u, 192u, 1000u, 1041u}) {
    const auto a = hdc::HyperVector::random(dim, rng);
    const auto b = hdc::HyperVector::random(dim, rng);
    const auto aw = a.words();
    const auto bw = b.words();
    const std::size_t exact = reference_and_popcount(aw, bw);

    std::vector<std::size_t> caps{0, 1, exact, exact + 1, 64 * aw.size(),
                                  kUnbounded};
    if (exact > 0) {
      caps.push_back(exact - 1);
    }

    for (const auto* backend : hdc::simd::registered_backends()) {
      if (!backend->available()) {
        continue;
      }
      for (const std::size_t cap : caps) {
        SCOPED_TRACE(std::string(backend->name) + " dim " +
                     std::to_string(dim) + " cap " + std::to_string(cap));
        const auto scan = backend->and_popcount_capped(aw, bw, cap);
        EXPECT_LE(scan.value, exact);
        EXPECT_LE(scan.words_scanned, aw.size());
        if (scan.value > cap) {
          // A count that overshot the cap must be the exact full count:
          // the abort condition proves final <= cap, so it can never
          // fire on a scan whose final count exceeds it.
          EXPECT_EQ(scan.value, exact);
          EXPECT_EQ(scan.words_scanned, aw.size());
        } else {
          // At-or-under-cap result (possibly aborted): the true count
          // is provably <= cap.
          EXPECT_LE(exact, cap);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pruned == exhaustive, bit for bit.

void expect_kmeans_results_identical(const HvKMeansResult& a,
                                     const HvKMeansResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cluster_weights, b.cluster_weights);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.reseeds, b.reseeds);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t c = 0; c < a.centroids.size(); ++c) {
    EXPECT_TRUE(std::ranges::equal(a.centroids[c].counts(),
                                   b.centroids[c].counts()))
        << "centroid " << c;
    EXPECT_EQ(a.centroids[c].total_weight(), b.centroids[c].total_weight());
    EXPECT_DOUBLE_EQ(a.centroids[c].norm(), b.centroids[c].norm());
  }
}

std::vector<hdc::HyperVector> make_points(std::size_t count, std::size_t dim,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<hdc::HyperVector> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(hdc::HyperVector::random(dim, rng));
  }
  return points;
}

std::vector<std::size_t> first_n_seeds(std::size_t k) {
  std::vector<std::size_t> seeds(k);
  for (std::size_t c = 0; c < k; ++c) {
    seeds[c] = c;
  }
  return seeds;
}

TEST(PrunedAssignment, MatchesExhaustiveAcrossBackendsPoolsAndK) {
  const BackendSelectionGuard guard;
  // dim 1000 on purpose: a ragged last word keeps the bounded kernels'
  // scalar tails in play.
  const auto points = make_points(60, 1000, 23);
  for (const auto* backend : hdc::simd::registered_backends()) {
    if (!backend->available()) {
      continue;
    }
    hdc::simd::force_backend(backend->name);
    for (const auto distance :
         {ClusterDistance::kCosine, ClusterDistance::kHamming}) {
      for (const std::size_t k : {2u, 5u, 16u, 40u}) {
        HvKMeansConfig config{.clusters = k,
                              .iterations = 6,
                              .distance = distance,
                              .assign_mode = AssignMode::kExhaustive};
        const auto seeds = first_n_seeds(k);
        const auto exhaustive = HvKMeans(config).run(points, {}, seeds);
        EXPECT_FALSE(exhaustive.pruned_assignment);
        config.assign_mode = AssignMode::kPruned;
        for (const std::size_t threads : {1u, 2u, 4u}) {
          SCOPED_TRACE(std::string(backend->name) +
                       (distance == ClusterDistance::kCosine ? " cosine"
                                                             : " hamming") +
                       " k " + std::to_string(k) + " threads " +
                       std::to_string(threads));
          util::ThreadPool pool(threads);
          config.pool = &pool;
          const auto pruned = HvKMeans(config).run(points, {}, seeds);
          EXPECT_TRUE(pruned.pruned_assignment);
          expect_kmeans_results_identical(exhaustive, pruned);
        }
        config.pool = nullptr;
      }
    }
  }
}

TEST(PrunedAssignment, TieBreakAdversarialCoincidentCentroids) {
  const BackendSelectionGuard guard;
  // Seeds 0..2 are byte-identical points, so three centroids coincide
  // and EVERY point ties between clusters 0, 1, and 2 at the exact
  // minimum — the argmin is decided purely by the lowest-index rule the
  // pruned scan must reproduce. A zero HV (and a zero seed centroid)
  // rides along to pin the zero-norm cosine shortcut, and the starved
  // clusters exercise the reseed path under pruning.
  auto points = make_points(30, 512, 29);
  points[1] = points[0];
  points[2] = points[0];
  points[5] = hdc::HyperVector(512);  // all-zero point
  for (const auto* backend : hdc::simd::registered_backends()) {
    if (!backend->available()) {
      continue;
    }
    hdc::simd::force_backend(backend->name);
    for (const auto distance :
         {ClusterDistance::kCosine, ClusterDistance::kHamming}) {
      HvKMeansConfig config{.clusters = 5,
                            .iterations = 8,
                            .distance = distance,
                            .assign_mode = AssignMode::kExhaustive};
      const std::vector<std::size_t> seeds{0, 1, 2, 5, 7};
      const auto exhaustive = HvKMeans(config).run(points, {}, seeds);
      config.assign_mode = AssignMode::kPruned;
      for (const std::size_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(backend->name) + " distance " +
                     std::to_string(static_cast<int>(distance)) +
                     " threads " + std::to_string(threads));
        util::ThreadPool pool(threads);
        config.pool = &pool;
        const auto pruned = HvKMeans(config).run(points, {}, seeds);
        expect_kmeans_results_identical(exhaustive, pruned);
      }
      config.pool = nullptr;
    }
  }
}

// ---------------------------------------------------------------------
// OpCounts: exhaustive keeps the classic closed-form totals; pruned
// mode reports measured work obeying the conservation law, identically
// at every pool size.

TEST(PrunedAssignment, OpsAccountingExhaustiveAndPrunedConservation) {
  const auto points = make_points(40, 512, 31);
  const std::uint64_t n = points.size();
  constexpr std::uint64_t kDim = 512;
  constexpr std::uint64_t kWords = kDim / 64;
  for (const auto distance :
       {ClusterDistance::kCosine, ClusterDistance::kHamming}) {
    SCOPED_TRACE(distance == ClusterDistance::kCosine ? "cosine" : "hamming");
    HvKMeansConfig config{.clusters = 16,
                          .iterations = 5,
                          .distance = distance,
                          .assign_mode = AssignMode::kExhaustive};
    const auto seeds = first_n_seeds(16);
    const auto exhaustive = HvKMeans(config).run(points, {}, seeds);
    const std::uint64_t iters = exhaustive.iterations_run;
    const std::uint64_t pairs = n * 16 * iters;
    EXPECT_EQ(exhaustive.ops.distance_evals, pairs);
    EXPECT_EQ(exhaustive.ops.candidates_pruned, 0u);
    EXPECT_EQ(exhaustive.ops.dot_adds, pairs * kDim);
    if (distance == ClusterDistance::kHamming) {
      EXPECT_EQ(exhaustive.ops.words_scanned, pairs * kWords);
    } else {
      EXPECT_GT(exhaustive.ops.words_scanned, 0u);
    }

    config.assign_mode = AssignMode::kPruned;
    const auto pruned = HvKMeans(config).run(points, {}, seeds);
    expect_kmeans_results_identical(exhaustive, pruned);
    EXPECT_EQ(pruned.iterations_run, iters);
    // Conservation: every (point, centroid) pair per iteration is
    // either evaluated or pruned, never both, never dropped.
    EXPECT_EQ(pruned.ops.distance_evals + pruned.ops.candidates_pruned,
              pairs);
    EXPECT_LE(pruned.ops.distance_evals, pairs);
    // Measured work never exceeds the exhaustive formulas.
    EXPECT_LE(pruned.ops.dot_adds, exhaustive.ops.dot_adds);
    EXPECT_GT(pruned.ops.words_scanned, 0u);
    if (distance == ClusterDistance::kHamming) {
      EXPECT_LE(pruned.ops.words_scanned, pairs * kWords);
    }

    // Pool-size invariance of the measured accounting (relaxed atomic
    // folds of commutative integer sums).
    for (const std::size_t threads : {2u, 4u}) {
      util::ThreadPool pool(threads);
      config.pool = &pool;
      const auto again = HvKMeans(config).run(points, {}, seeds);
      EXPECT_EQ(again.ops.distance_evals, pruned.ops.distance_evals)
          << "threads " << threads;
      EXPECT_EQ(again.ops.candidates_pruned, pruned.ops.candidates_pruned)
          << "threads " << threads;
      EXPECT_EQ(again.ops.dot_adds, pruned.ops.dot_adds)
          << "threads " << threads;
      EXPECT_EQ(again.ops.words_scanned, pruned.ops.words_scanned)
          << "threads " << threads;
    }
    config.pool = nullptr;
  }
}

// ---------------------------------------------------------------------
// Golden hashes with pruning forced through the session config: the
// golden recipes run at clusters=2, far below the auto threshold, so
// kPruned is the only way these runs take the pruned path — and they
// must land on the exact same label maps as every prior PR.

img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

img::ImageU8 scene_background(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 1, 200);
  for (std::size_t y = height / 4; y < 3 * height / 4; ++y) {
    for (std::size_t x = width / 4; x < 3 * width / 4; ++x) {
      image(x, y) = 60;
    }
  }
  for (std::size_t x = 0; x < width; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 scene_with_square(std::size_t width, std::size_t height,
                               std::size_t x0, std::size_t y0) {
  img::ImageU8 image = scene_background(width, height);
  for (std::size_t y = y0; y < std::min(height, y0 + 5); ++y) {
    for (std::size_t x = x0; x < std::min(width, x0 + 5); ++x) {
      image(x, y) = 90;
    }
  }
  return image;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;
constexpr std::uint64_t kGoldenStreamHash = 6522647722573592175ULL;

core::SegHdcConfig golden_config() {
  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

TEST(PrunedAssignment, GoldenBatchHashUnchangedWithPruningForced) {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));

  auto config = golden_config();
  config.assign_mode = core::AssignMode::kPruned;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(threads);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&pool});
    const auto results = session.segment_many(images);
    std::uint64_t hash = kFnvOffset;
    for (const auto& result : results) {
      hash = metrics::label_map_hash(result.labels, hash);
    }
    EXPECT_EQ(hash, kGoldenBatchHash)
        << "pruned assignment drifted the golden batch (threads=" << threads
        << ")";
  }
}

TEST(PrunedAssignment, GoldenStreamHashUnchangedWithPruningForced) {
  auto config = golden_config();
  config.assign_mode = core::AssignMode::kPruned;
  const core::SegHdcSession session(config);
  core::SegHdcSession::Stream stream;
  std::vector<img::ImageU8> frames;
  frames.push_back(scene_background(32, 30));
  frames.push_back(scene_with_square(32, 30, 8, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));  // replay
  frames.push_back(scene_background(32, 30));
  std::uint64_t hash = kFnvOffset;
  for (const auto& frame : frames) {
    const auto warm = session.segment_stream(frame, stream);
    hash = metrics::label_map_hash(warm.result.labels, hash);
  }
  EXPECT_EQ(hash, kGoldenStreamHash)
      << "pruned assignment drifted the golden stream";
}

// ---------------------------------------------------------------------
// SEGHDC_ASSIGN_MODE: config wins, env fills in for kAuto, malformed
// values are hard errors.

TEST(AssignModeEnv, ParsingAndPrecedence) {
  const AssignModeEnvGuard guard;
  const auto points = make_points(10, 256, 37);
  const auto seeds = first_n_seeds(2);

  // Malformed value: constructing the clusterer throws, it never falls
  // back silently.
  setenv("SEGHDC_ASSIGN_MODE", "fastest", 1);
  EXPECT_THROW(HvKMeans(HvKMeansConfig{.clusters = 2}),
               std::invalid_argument);

  // kAuto + env "pruned": k=2 is far below the auto threshold, so the
  // pruned path running proves the env override took effect.
  setenv("SEGHDC_ASSIGN_MODE", "pruned", 1);
  {
    const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 3});
    EXPECT_TRUE(kmeans.run(points, {}, seeds).pruned_assignment);
  }

  // Explicit config beats the environment.
  {
    const HvKMeans kmeans(HvKMeansConfig{
        .clusters = 2, .iterations = 3,
        .assign_mode = AssignMode::kExhaustive});
    EXPECT_FALSE(kmeans.run(points, {}, seeds).pruned_assignment);
  }

  // env "auto" is accepted and leaves the threshold rule in charge.
  setenv("SEGHDC_ASSIGN_MODE", "auto", 1);
  {
    const HvKMeans kmeans(HvKMeansConfig{.clusters = 2, .iterations = 3});
    EXPECT_FALSE(kmeans.run(points, {}, seeds).pruned_assignment);
  }

  // No override: kAuto prunes exactly from prune_min_clusters up.
  unsetenv("SEGHDC_ASSIGN_MODE");
  {
    const HvKMeans kmeans(HvKMeansConfig{
        .clusters = 2, .iterations = 3, .prune_min_clusters = 2});
    EXPECT_TRUE(kmeans.run(points, {}, seeds).pruned_assignment);
  }
  {
    const HvKMeans kmeans(HvKMeansConfig{
        .clusters = 2, .iterations = 3, .prune_min_clusters = 3});
    EXPECT_FALSE(kmeans.run(points, {}, seeds).pruned_assignment);
  }
}

}  // namespace
