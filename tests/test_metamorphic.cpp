// Metamorphic tests: transformations of the input with predictable
// effects on the output. These catch subtle encoding bugs that
// fixed-example tests cannot.
#include <gtest/gtest.h>

#include "src/core/seghdc.hpp"
#include "src/hdc/distances.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

/// Agreement between two binary partitions of the same pixels, under
/// the better of the two label polarities.
double partition_agreement(const img::LabelMap& a, const img::LabelMap& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    same += a.pixels()[i] == b.pixels()[i] ? 1 : 0;
  }
  const double direct =
      static_cast<double>(same) / static_cast<double>(a.pixels().size());
  return std::max(direct, 1.0 - direct);
}

TEST(Metamorphic, ColorInversionPreservesClusters) {
  // The level ladder realises hamming(v_a, v_b) ~ |a - b|, and
  // |(255-a) - (255-b)| = |a - b|: inverting every pixel value must
  // leave the PARTITION essentially unchanged (labels may swap).
  img::ImageU8 image(48, 48, 1, 40);
  for (std::size_t y = 10; y < 38; ++y) {
    for (std::size_t x = 10; x < 38; ++x) {
      image(x, y) = 190;
    }
  }
  img::ImageU8 inverted(48, 48, 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    inverted.pixels()[i] =
        static_cast<std::uint8_t>(255 - image.pixels()[i]);
  }
  SegHdcConfig config;
  config.dim = 2048;
  config.beta = 6;
  config.iterations = 6;
  const auto original = SegHdc(config).segment(image);
  const auto flipped = SegHdc(config).segment(inverted);
  EXPECT_GT(partition_agreement(original.labels, flipped.labels), 0.98);
}

TEST(Metamorphic, UniformBrightnessShiftPreservesClusters) {
  // Adding a constant to every pixel translates all color levels by the
  // same amount; pairwise distances (hence the partition) survive.
  img::ImageU8 image(48, 48, 1, 30);
  for (std::size_t y = 12; y < 36; ++y) {
    for (std::size_t x = 12; x < 36; ++x) {
      image(x, y) = 170;
    }
  }
  img::ImageU8 shifted(48, 48, 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    shifted.pixels()[i] =
        static_cast<std::uint8_t>(image.pixels()[i] + 60);
  }
  SegHdcConfig config;
  config.dim = 2048;
  config.beta = 6;
  config.iterations = 6;
  const auto original = SegHdc(config).segment(image);
  const auto moved = SegHdc(config).segment(shifted);
  EXPECT_GT(partition_agreement(original.labels, moved.labels), 0.98);
}

TEST(Metamorphic, HorizontalFlipMirrorsLabels) {
  // Mirroring the image mirrors the label map when the column ladder is
  // relabelled consistently — the partition must agree pixel-for-pixel
  // after flipping back. Not exact (the column HV ladder is not
  // palindromic) but position plays a minor role at alpha = 0.2, so
  // agreement should be near-total on a color-separable image.
  img::ImageU8 image(40, 40, 1, 20);
  for (std::size_t y = 8; y < 32; ++y) {
    for (std::size_t x = 4; x < 20; ++x) {  // off-center square
      image(x, y) = 220;
    }
  }
  img::ImageU8 mirrored(40, 40, 1);
  for (std::size_t y = 0; y < 40; ++y) {
    for (std::size_t x = 0; x < 40; ++x) {
      mirrored(x, y) = image(39 - x, y);
    }
  }
  SegHdcConfig config;
  config.dim = 2048;
  config.beta = 4;
  config.iterations = 6;
  const auto original = SegHdc(config).segment(image);
  const auto flipped = SegHdc(config).segment(mirrored);
  // Flip the mirrored labels back before comparing.
  img::LabelMap unflipped(40, 40, 1, 0);
  for (std::size_t y = 0; y < 40; ++y) {
    for (std::size_t x = 0; x < 40; ++x) {
      unflipped(x, y) = flipped.labels(39 - x, y);
    }
  }
  EXPECT_GT(partition_agreement(original.labels, unflipped), 0.97);
}

TEST(Metamorphic, DuplicatingAnImageRegionKeepsItsLabels) {
  // Pixels with identical (block, color) keys MUST get identical labels
  // — the dedup invariant stated as a metamorphic property.
  img::ImageU8 image(32, 32, 1, 50);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      image(x, y) = 200;
      image(x + 16, y + 16) = 200;  // same color, different block
    }
  }
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.iterations = 5;
  const auto result = SegHdc(config).segment(image);
  // Within each 8x8 block every same-color pixel shares a label.
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      EXPECT_EQ(result.labels(x, y), result.labels(0, 0));
      EXPECT_EQ(result.labels(x + 16, y + 16), result.labels(16, 16));
    }
  }
}

TEST(Metamorphic, IncreasingNoiseNeverImprovesMuch) {
  // Weak monotonicity: heavy salt noise must not *raise* IoU
  // meaningfully over the clean image (sanity against metric bugs).
  img::ImageU8 clean(48, 48, 1, 25);
  img::ImageU8 truth(48, 48, 1, 0);
  for (std::size_t y = 12; y < 36; ++y) {
    for (std::size_t x = 12; x < 36; ++x) {
      clean(x, y) = 210;
      truth(x, y) = 255;
    }
  }
  img::ImageU8 noisy = clean;
  util::Rng rng(9);
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (rng.next_double() < 0.15) {
      noisy.pixels()[i] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 4;
  config.iterations = 6;
  const auto clean_iou = metrics::best_foreground_iou(
      SegHdc(config).segment(clean).labels, 2, truth).iou;
  const auto noisy_iou = metrics::best_foreground_iou(
      SegHdc(config).segment(noisy).labels, 2, truth).iou;
  EXPECT_LE(noisy_iou, clean_iou + 0.02);
  EXPECT_GT(noisy_iou, 0.5);  // but degradation is graceful
}

}  // namespace
