// Tests for the segmentation metrics, especially the optimal cluster ->
// foreground matching that makes unsupervised outputs comparable.
#include <gtest/gtest.h>

#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::metrics;

img::ImageU8 mask_from(const std::vector<std::string>& rows) {
  img::ImageU8 mask(rows[0].size(), rows.size(), 1, 0);
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      mask.at(x, y) = rows[y][x] == '#' ? 255 : 0;
    }
  }
  return mask;
}

img::LabelMap labels_from(const std::vector<std::string>& rows) {
  img::LabelMap labels(rows[0].size(), rows.size(), 1, 0);
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      labels.at(x, y) = static_cast<std::uint32_t>(rows[y][x] - '0');
    }
  }
  return labels;
}

TEST(Confusion, CountsAllFourCells) {
  const auto pred = mask_from({"##..", "##.."});
  const auto truth = mask_from({"#.#.", "#.#."});
  const auto counts = confusion(pred, truth);
  EXPECT_EQ(counts.true_positive, 2u);
  EXPECT_EQ(counts.false_positive, 2u);
  EXPECT_EQ(counts.false_negative, 2u);
  EXPECT_EQ(counts.true_negative, 2u);
}

TEST(Confusion, DerivedMetrics) {
  ConfusionCounts counts;
  counts.true_positive = 6;
  counts.false_positive = 2;
  counts.false_negative = 2;
  counts.true_negative = 10;
  EXPECT_NEAR(counts.iou(), 0.6, 1e-12);
  EXPECT_NEAR(counts.dice(), 0.75, 1e-12);
  EXPECT_NEAR(counts.pixel_accuracy(), 0.8, 1e-12);
  EXPECT_NEAR(counts.precision(), 0.75, 1e-12);
  EXPECT_NEAR(counts.recall(), 0.75, 1e-12);
}

TEST(Confusion, EmptyMasksScorePerfect) {
  const auto empty = mask_from({"....", "...."});
  EXPECT_DOUBLE_EQ(binary_iou(empty, empty), 1.0);
  const auto counts = confusion(empty, empty);
  EXPECT_DOUBLE_EQ(counts.dice(), 1.0);
}

TEST(Confusion, ShapeMismatchThrows) {
  const img::ImageU8 a(3, 3, 1);
  const img::ImageU8 b(4, 3, 1);
  EXPECT_THROW(confusion(a, b), std::invalid_argument);
}

TEST(BinaryIou, PerfectAndDisjoint) {
  const auto truth = mask_from({"##..", "##.."});
  EXPECT_DOUBLE_EQ(binary_iou(truth, truth), 1.0);
  const auto disjoint = mask_from({"..##", "..##"});
  EXPECT_DOUBLE_EQ(binary_iou(disjoint, truth), 0.0);
}

TEST(BestForegroundIou, FindsCorrectPolarity) {
  // Cluster 0 covers the ground-truth foreground: the matcher must pick
  // cluster 0 as foreground even though 0 conventionally means bg.
  const auto labels = labels_from({"0011", "0011"});
  const auto truth = mask_from({"##..", "##.."});
  const auto matched = best_foreground_iou(labels, 2, truth);
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
  EXPECT_EQ(matched.foreground_mask, 0b01u);
  EXPECT_EQ(matched.mask, truth);
}

TEST(BestForegroundIou, InvariantToLabelPermutation) {
  const auto truth = mask_from({"#..#", ".##."});
  const auto labels_a = labels_from({"1001", "0110"});
  const auto labels_b = labels_from({"0110", "1001"});
  EXPECT_DOUBLE_EQ(best_foreground_iou(labels_a, 2, truth).iou,
                   best_foreground_iou(labels_b, 2, truth).iou);
}

TEST(BestForegroundIou, ThreeClustersMergesTwoIntoForeground) {
  // Foreground is split across clusters 1 and 2 (the MoNuSeg k=3 case);
  // the matcher must take their union.
  const auto labels = labels_from({"0012", "0012"});
  const auto truth = mask_from({"..##", "..##"});
  const auto matched = best_foreground_iou(labels, 3, truth);
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
  EXPECT_EQ(matched.foreground_mask, 0b110u);
}

TEST(BestForegroundIou, ImperfectClusterScoresPartially) {
  const auto labels = labels_from({"1110", "0000"});
  const auto truth = mask_from({"##..", "...."});
  // Cluster 1 as fg: tp=2, fp=1, fn=0 -> IoU 2/3; complement is worse.
  const auto matched = best_foreground_iou(labels, 2, truth);
  EXPECT_NEAR(matched.iou, 2.0 / 3.0, 1e-12);
}

TEST(BestForegroundIou, AllBackgroundTruth) {
  const auto labels = labels_from({"0101"});
  const auto truth = mask_from({"...."});
  // Empty foreground subset achieves IoU 1 by convention.
  const auto matched = best_foreground_iou(labels, 2, truth);
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
}

TEST(BestForegroundIou, ValidatesArguments) {
  const auto labels = labels_from({"01"});
  const auto truth = mask_from({".#"});
  EXPECT_THROW(best_foreground_iou(labels, 1, truth),
               std::invalid_argument);
  EXPECT_THROW(best_foreground_iou(labels, 17, truth),
               std::invalid_argument);
  const auto big_truth = mask_from({".#.#"});
  EXPECT_THROW(best_foreground_iou(labels, 2, big_truth),
               std::invalid_argument);
}

TEST(BestForegroundIou, RejectsLabelsOutsideClusterCount) {
  const auto labels = labels_from({"03"});
  const auto truth = mask_from({".#"});
  EXPECT_THROW(best_foreground_iou(labels, 2, truth),
               std::invalid_argument);
}

TEST(BestForegroundIouAny, SmallLabelCountsMatchExact) {
  const auto labels = labels_from({"0012", "0012"});
  const auto truth = mask_from({"..##", "..##"});
  EXPECT_DOUBLE_EQ(best_foreground_iou_any(labels, truth).iou,
                   best_foreground_iou(labels, 3, truth).iou);
}

TEST(BestForegroundIouAny, HandlesManyLabels) {
  // 20 labels: one per column pair, foreground = right half.
  img::LabelMap labels(40, 4, 1, 0);
  img::ImageU8 truth(40, 4, 1, 0);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 40; ++x) {
      labels.at(x, y) = static_cast<std::uint32_t>(x / 2);
      truth.at(x, y) = x >= 20 ? 255 : 0;
    }
  }
  const auto matched = best_foreground_iou_any(labels, truth);
  // Labels partition cleanly into fg/bg halves: greedy achieves 1.0.
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
  EXPECT_EQ(matched.mask, truth);
}

TEST(Mean, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({0.5}), 0.5);
}

}  // namespace
