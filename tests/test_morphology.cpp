// Tests for binary morphology.
#include <gtest/gtest.h>

#include "src/imaging/morphology.hpp"

namespace {

using namespace seghdc::img;

ImageU8 mask_from(const std::vector<std::string>& rows) {
  ImageU8 mask(rows[0].size(), rows.size(), 1, 0);
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      mask.at(x, y) = rows[y][x] == '#' ? 255 : 0;
    }
  }
  return mask;
}

std::size_t area(const ImageU8& mask) {
  std::size_t count = 0;
  for (const auto v : mask.pixels()) {
    count += v != 0 ? 1 : 0;
  }
  return count;
}

TEST(Morphology, ErodeShrinksSquare) {
  const auto mask = mask_from({
      ".....",
      ".###.",
      ".###.",
      ".###.",
      ".....",
  });
  const auto eroded = erode3x3(mask);
  EXPECT_EQ(area(eroded), 1u);
  EXPECT_EQ(eroded.at(2, 2), 255);
}

TEST(Morphology, DilateGrowsPoint) {
  const auto mask = mask_from({
      ".....",
      ".....",
      "..#..",
      ".....",
      ".....",
  });
  const auto dilated = dilate3x3(mask);
  EXPECT_EQ(area(dilated), 9u);
  EXPECT_EQ(dilated.at(1, 1), 255);
  EXPECT_EQ(dilated.at(3, 3), 255);
  EXPECT_EQ(dilated.at(0, 0), 0);
}

TEST(Morphology, ErodeTreatsBorderAsBackground) {
  const ImageU8 full(4, 4, 1, 255);
  const auto eroded = erode3x3(full);
  // Border pixels lose support from outside the image.
  EXPECT_EQ(eroded.at(0, 0), 0);
  EXPECT_EQ(eroded.at(1, 1), 255);
}

TEST(Morphology, OpenRemovesSpeckle) {
  const auto mask = mask_from({
      "#......",
      ".......",
      "..####.",
      "..####.",
      "..####.",
      ".......",
  });
  const auto opened = open3x3(mask);
  EXPECT_EQ(opened.at(0, 0), 0);       // speckle gone
  EXPECT_EQ(opened.at(3, 3), 255);     // body interior survives
}

TEST(Morphology, CloseFillsPinhole) {
  const auto mask = mask_from({
      "#####",
      "#####",
      "##.##",
      "#####",
      "#####",
  });
  const auto closed = close3x3(mask);
  EXPECT_EQ(closed.at(2, 2), 255);
}

TEST(Morphology, DilateThenErodeIdentityOnBigSquare) {
  const auto mask = mask_from({
      ".......",
      ".#####.",
      ".#####.",
      ".#####.",
      ".#####.",
      ".#####.",
      ".......",
  });
  EXPECT_EQ(close3x3(mask), mask);
}

TEST(Morphology, MultiChannelThrows) {
  const ImageU8 rgb(3, 3, 3);
  EXPECT_THROW(erode3x3(rgb), std::invalid_argument);
  EXPECT_THROW(dilate3x3(rgb), std::invalid_argument);
}

}  // namespace
