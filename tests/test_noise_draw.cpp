// Tests for noise generation and blob rasterisation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/imaging/draw.hpp"
#include "src/imaging/noise.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::img;
using seghdc::util::Rng;

TEST(Noise, GaussianNoisePerturbsAroundMean) {
  Rng rng(1);
  ImageU8 image(64, 64, 1, 128);
  add_gaussian_noise(image, 10.0, rng);
  double sum = 0.0;
  std::size_t changed = 0;
  for (const auto v : image.pixels()) {
    sum += v;
    changed += v != 128 ? 1 : 0;
  }
  EXPECT_NEAR(sum / static_cast<double>(image.size()), 128.0, 2.0);
  EXPECT_GT(changed, image.size() / 2);
}

TEST(Noise, ZeroSigmaIsNoop) {
  Rng rng(2);
  ImageU8 image(8, 8, 1, 50);
  add_gaussian_noise(image, 0.0, rng);
  for (const auto v : image.pixels()) {
    EXPECT_EQ(v, 50);
  }
}

TEST(Noise, ShotNoiseScalesWithSignal) {
  Rng rng(3);
  ImageU8 dark(256, 16, 1, 10);
  ImageU8 bright(256, 16, 1, 200);
  add_shot_noise(dark, 1.0, rng);
  add_shot_noise(bright, 1.0, rng);
  auto variance = [](const ImageU8& image, double mean) {
    double sum = 0.0;
    for (const auto v : image.pixels()) {
      sum += (v - mean) * (v - mean);
    }
    return sum / static_cast<double>(image.size());
  };
  EXPECT_LT(variance(dark, 10.0), variance(bright, 200.0));
}

TEST(Noise, ValueNoiseInUnitRange) {
  Rng rng(4);
  const auto noise = value_noise(64, 48, 16, 3, rng);
  for (const auto v : noise.pixels()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Noise, ValueNoiseIsSmooth) {
  Rng rng(5);
  const auto noise = value_noise(64, 64, 32, 1, rng);
  // Single-octave noise with period 32: neighbouring pixels differ by a
  // small fraction of the range.
  double max_step = 0.0;
  for (std::size_t y = 0; y < 64; ++y) {
    for (std::size_t x = 1; x < 64; ++x) {
      max_step = std::max(
          max_step, std::abs(static_cast<double>(noise(x, y)) -
                             noise(x - 1, y)));
    }
  }
  EXPECT_LT(max_step, 0.2);
}

TEST(Noise, ValueNoiseDeterministicPerSeed) {
  Rng rng_a(6);
  Rng rng_b(6);
  EXPECT_EQ(value_noise(32, 32, 8, 2, rng_a),
            value_noise(32, 32, 8, 2, rng_b));
}

TEST(Noise, ValueNoiseValidatesArguments) {
  Rng rng(7);
  EXPECT_THROW(value_noise(32, 32, 1, 2, rng), std::invalid_argument);
  EXPECT_THROW(value_noise(32, 32, 8, 0, rng), std::invalid_argument);
}

TEST(BlobShape, CircleRadialFractionIsExact) {
  BlobShape circle;
  circle.center_x = 10.0;
  circle.center_y = 10.0;
  circle.radius_x = 5.0;
  circle.radius_y = 5.0;
  EXPECT_NEAR(circle.radial_fraction(10.0, 10.0), 0.0, 1e-12);
  EXPECT_NEAR(circle.radial_fraction(15.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(circle.radial_fraction(10.0, 12.5), 0.5, 1e-12);
  EXPECT_GT(circle.radial_fraction(20.0, 10.0), 1.0);
}

TEST(BlobShape, RotatedEllipseAxes) {
  BlobShape ellipse;
  ellipse.center_x = 0.0;
  ellipse.center_y = 0.0;
  ellipse.radius_x = 4.0;
  ellipse.radius_y = 2.0;
  ellipse.angle = 3.14159265358979323846 / 2.0;  // 90 degrees
  // After rotation the long axis lies along y.
  EXPECT_NEAR(ellipse.radial_fraction(0.0, 4.0), 1.0, 1e-9);
  EXPECT_NEAR(ellipse.radial_fraction(2.0, 0.0), 1.0, 1e-9);
}

TEST(BlobShape, RandomRespectsParameters) {
  Rng rng(8);
  const auto shape = BlobShape::random(50, 60, 10.0, 0.3, 0.1, rng);
  EXPECT_DOUBLE_EQ(shape.center_x, 50.0);
  EXPECT_DOUBLE_EQ(shape.center_y, 60.0);
  EXPECT_GE(shape.radius_x, 10.0 * 0.7);
  EXPECT_LE(shape.radius_x, 10.0 * 1.3);
  EXPECT_EQ(shape.harmonic_amplitudes.size(), 3u);
}

TEST(BlobShape, RandomValidatesArguments) {
  Rng rng(9);
  EXPECT_THROW(BlobShape::random(0, 0, -1.0, 0.2, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(BlobShape::random(0, 0, 5.0, 1.0, 0.1, rng),
               std::invalid_argument);
}

TEST(FillBlob, PaintsInteriorAndMask) {
  ImageU8 image(30, 30, 1, 0);
  ImageU8 mask(30, 30, 1, 0);
  BlobShape circle;
  circle.center_x = 15.0;
  circle.center_y = 15.0;
  circle.radius_x = 6.0;
  circle.radius_y = 6.0;
  fill_blob(image, &mask, circle, flat_shade(200, 0.0));

  EXPECT_EQ(image.at(15, 15), 200);
  EXPECT_EQ(mask.at(15, 15), 255);
  EXPECT_EQ(image.at(0, 0), 0);
  EXPECT_EQ(mask.at(0, 0), 0);

  // Mask area ~ pi * r^2.
  std::size_t area = 0;
  for (const auto v : mask.pixels()) {
    area += v != 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(area), 3.14159 * 36.0, 20.0);
}

TEST(FillBlob, ClipsAtImageBorder) {
  ImageU8 image(20, 20, 1, 0);
  BlobShape circle;
  circle.center_x = 0.0;
  circle.center_y = 0.0;
  circle.radius_x = 8.0;
  circle.radius_y = 8.0;
  EXPECT_NO_THROW(fill_blob(image, nullptr, circle, flat_shade(99, 0.0)));
  EXPECT_EQ(image.at(0, 0), 99);
  EXPECT_EQ(image.at(19, 19), 0);
}

TEST(FillBlob, GradientShadeInterpolates) {
  ImageU8 image(40, 40, 1, 0);
  BlobShape circle;
  circle.center_x = 20.0;
  circle.center_y = 20.0;
  circle.radius_x = 10.0;
  circle.radius_y = 10.0;
  fill_blob(image, nullptr, circle, gradient_shade(200, 100));
  EXPECT_EQ(image.at(20, 20), 200);
  const int rim_value = image.at(29, 20);  // fraction 0.9
  EXPECT_NEAR(rim_value, 110, 6);
}

TEST(FillBlob, MaskShapeMismatchThrows) {
  ImageU8 image(10, 10, 1, 0);
  ImageU8 wrong(5, 5, 1, 0);
  BlobShape circle;
  circle.center_x = 5.0;
  circle.center_y = 5.0;
  circle.radius_x = 2.0;
  circle.radius_y = 2.0;
  EXPECT_THROW(fill_blob(image, &wrong, circle, flat_shade(1, 0.0)),
               std::invalid_argument);
}

TEST(OverlapsAny, DetectsProximity) {
  Rng rng(10);
  std::vector<BlobShape> existing;
  existing.push_back(BlobShape::random(10, 10, 5.0, 0.0, 0.0, rng));
  const auto near = BlobShape::random(18, 10, 5.0, 0.0, 0.0, rng);
  const auto far = BlobShape::random(40, 40, 5.0, 0.0, 0.0, rng);
  EXPECT_TRUE(overlaps_any(near, existing, 0.0));
  EXPECT_FALSE(overlaps_any(far, existing, 0.0));
  // A generous gap makes even the far one "overlap".
  EXPECT_TRUE(overlaps_any(far, existing, 50.0));
}

}  // namespace
