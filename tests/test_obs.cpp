// Tests for the observability layer (src/obs/): span tracer + Chrome-
// trace export, metrics registry + Prometheus rendering, and the two
// determinism gates — tracing forced on must leave the golden batch
// hash 13206585988845182882 and golden stream hash 6522647722573592175
// bit-identical (spans observe the pipeline, they never steer it).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/session.hpp"
#include "src/imaging/image.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/serve/server.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

// ---------------------------------------------------------------------
// Tracer + SpanScope

/// Leaves the process-wide tracer exactly as a test found it.
struct TracerGuard {
  bool prior = obs::trace_enabled();
  ~TracerGuard() { obs::Tracer::instance().set_enabled(prior); }
};

TEST(Trace, DisabledSpansRecordNothing) {
  const TracerGuard guard;
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
  {
    obs::SpanScope span("never", "test", "k", 1);
    span.arg("extra", 2);
  }
  obs::emit_complete("never_either", "test", 0.5, "k", 3);
  EXPECT_TRUE(obs::Tracer::instance().collect().empty());
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST(Trace, SpanScopesNestAndCarryArgs) {
  const obs::TraceSession session;
  {
    const obs::SpanScope outer("outer", "test", "req", 7);
    {
      obs::SpanScope inner("inner", "test");
      inner.arg("band", 3);
      inner.arg("reused", 1);
      inner.arg("ignored", 9);  // both slots taken: silently dropped
    }
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), 2u);
  // collect() sorts by start time, so the outer span comes first.
  const obs::TraceEvent& outer = events[0];
  const obs::TraceEvent& inner = events[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(outer.cat, "test");
  EXPECT_STREQ(outer.arg1_key, "req");
  EXPECT_EQ(outer.arg1_value, 7u);
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(inner.arg1_key, "band");
  EXPECT_EQ(inner.arg1_value, 3u);
  EXPECT_STREQ(inner.arg2_key, "reused");
  EXPECT_EQ(inner.arg2_value, 1u);
  // Proper nesting: the inner span starts no earlier and ends no later.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_EQ(inner.tid, outer.tid);  // same thread
}

TEST(Trace, EmitCompleteBackdatesTheStart) {
  const obs::TraceSession session;
  const std::uint64_t before = obs::Tracer::instance().now_ns();
  obs::emit_complete("queue_wait", "test", 0.25, "req", 11);
  const auto events = session.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_ns, 250000000u);  // 0.25s in ns, exactly
  // The span ended "now", so its start is ~0.25s in the past — i.e.
  // before the pre-call timestamp.
  EXPECT_LT(events[0].start_ns, before);
  EXPECT_STREQ(events[0].arg1_key, "req");
  EXPECT_EQ(events[0].arg1_value, 11u);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  const obs::TraceSession session;
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < obs::Tracer::kRingCapacity + extra; ++i) {
    const obs::SpanScope span("tick", "test", "i", i);
  }
  const auto events = obs::Tracer::instance().collect();
  EXPECT_EQ(events.size(), obs::Tracer::kRingCapacity);
  EXPECT_EQ(obs::Tracer::instance().dropped(), extra);
}

TEST(Trace, JsonIsWellFormedChromeTrace) {
  // Hand-built events through the serializer: exact ts/dur math (ns ->
  // us with three decimals) and the args object.
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent event;
  event.name = "encode";
  event.cat = "serve";
  event.start_ns = 1500;
  event.dur_ns = 2250;
  event.tid = 3;
  event.arg1_key = "req";
  event.arg1_value = 42;
  events.push_back(event);
  std::ostringstream out;
  obs::write_trace_json(out, events, /*dropped=*/7);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.250"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"req\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":\"7\""), std::string::npos);
}

TEST(Trace, MalformedEnvIsAHardError) {
  const TracerGuard guard;
  const char* saved_env = std::getenv("SEGHDC_TRACE");
  const std::string saved = saved_env != nullptr ? saved_env : "";
  const bool had = saved_env != nullptr;

  core::SegHdcConfig config;
  config.dim = 64;

  ::setenv("SEGHDC_TRACE", "yes", 1);
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  ::setenv("SEGHDC_TRACE", "2", 1);
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);

  // "0" and unset leave the tracer alone; "1" switches it on.
  obs::Tracer::instance().set_enabled(false);
  ::setenv("SEGHDC_TRACE", "0", 1);
  EXPECT_NO_THROW(core::SegHdcSession{config});
  EXPECT_FALSE(obs::trace_enabled());
  ::unsetenv("SEGHDC_TRACE");
  EXPECT_NO_THROW(core::SegHdcSession{config});
  EXPECT_FALSE(obs::trace_enabled());
  ::setenv("SEGHDC_TRACE", "1", 1);
  EXPECT_NO_THROW(core::SegHdcSession{config});
  EXPECT_TRUE(obs::trace_enabled());

  // config.trace forces on without consulting the env at all.
  obs::Tracer::instance().set_enabled(false);
  ::setenv("SEGHDC_TRACE", "garbage", 1);
  config.trace = true;
  EXPECT_NO_THROW(core::SegHdcSession{config});
  EXPECT_TRUE(obs::trace_enabled());

  if (had) {
    ::setenv("SEGHDC_TRACE", saved.c_str(), 1);
  } else {
    ::unsetenv("SEGHDC_TRACE");
  }
}

// ---------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, RenderMatchesKnownValues) {
  obs::MetricsRegistry registry;
  obs::Counter& served = registry.counter("seghdc_test_served_total",
                                          "Requests served");
  served.add();
  served.add(2);
  obs::Gauge& depth = registry.gauge("seghdc_test_depth", "Queue depth");
  depth.set(5);
  depth.sub(7);
  obs::Counter& tenant_a = registry.counter("seghdc_test_gate_total", "",
                                            "tenant=\"a\"");
  tenant_a.add(4);
  const std::string text = registry.render();
  EXPECT_NE(text.find("# HELP seghdc_test_served_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE seghdc_test_served_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_served_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE seghdc_test_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("seghdc_test_gate_total{tenant=\"a\"} 4\n"),
            std::string::npos);
}

TEST(Metrics, HistogramRendersCumulativeBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("seghdc_test_seconds", "Latency");
  h.record(1.5e-6);  // second bucket (le=2e-06)
  h.record(3e-6);    // third bucket (le=4e-06)
  h.record(100.0);   // beyond the last bound: +Inf only
  const auto cumulative = h.cumulative_buckets();
  EXPECT_EQ(cumulative[0], 0u);
  EXPECT_EQ(cumulative[1], 1u);
  EXPECT_EQ(cumulative[2], 2u);
  EXPECT_EQ(cumulative[obs::Histogram::kBucketCount - 1], 2u);
  EXPECT_EQ(cumulative[obs::Histogram::kBucketCount], 3u);
  EXPECT_EQ(h.count(), 3u);

  const std::string text = registry.render();
  EXPECT_NE(text.find("# TYPE seghdc_test_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_seconds_bucket{le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_test_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("seghdc_test_seconds_sum "), std::string::npos);
}

TEST(Metrics, HandlesAreStableAndKindsAreChecked) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("seghdc_test_x_total");
  obs::Counter& b = registry.counter("seghdc_test_x_total");
  EXPECT_EQ(&a, &b);  // get-or-create returns the SAME handle
  obs::Counter& labeled = registry.counter("seghdc_test_x_total", "",
                                           "tenant=\"t\"");
  EXPECT_NE(&a, &labeled);  // distinct series, distinct handle
  EXPECT_THROW(registry.gauge("seghdc_test_x_total"), std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(Metrics, LatencyRecorderConcurrentRecordAndSnapshot) {
  obs::LatencyRecorder recorder(256);
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kRecords; ++i) {
        recorder.record(0.001);
      }
    });
  }
  // Snapshot continuously while the recorders hammer the window: every
  // intermediate snapshot must be internally consistent.
  for (int i = 0; i < 200; ++i) {
    const obs::LatencyPercentiles p = recorder.snapshot();
    EXPECT_LE(p.window_count, 256u);
    EXPECT_LE(p.window_count, p.count);
    if (p.count > 0) {
      EXPECT_DOUBLE_EQ(p.p50_seconds, 0.001);
    }
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const obs::LatencyPercentiles final = recorder.snapshot();
  EXPECT_EQ(final.count,
            static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(final.window_count, 256u);
  EXPECT_NEAR(final.mean_seconds, 0.001, 1e-9);
}

TEST(Metrics, HistogramConcurrentRecord) {
  obs::Histogram h(128);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 2000; ++i) {
        h.record(1e-3);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.count(), 8000u);
  EXPECT_NEAR(h.sum(), 8000 * 1e-3, 1e-6);
  EXPECT_EQ(h.cumulative_buckets()[obs::Histogram::kBucketCount], 8000u);
}

TEST(Metrics, DashboardEmitsThroughTheLogger) {
  obs::MetricsRegistry registry;
  registry.counter("seghdc_test_beat_total").add(9);
  EXPECT_THROW(obs::Dashboard(registry, 0.0), std::invalid_argument);
  testing::internal::CaptureStderr();
  {
    const obs::Dashboard dashboard(registry, 0.005);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("metrics: seghdc_test_beat_total=9"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism gates + server registry wiring (the golden recipes are
// the ones test_session/test_stream pin; fixed seed on purpose).

img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

std::vector<img::ImageU8> golden_batch() {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));
  return images;
}

core::SegHdcConfig golden_config() {
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;
constexpr std::uint64_t kGoldenStreamHash = 6522647722573592175ULL;

img::ImageU8 scene_background(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 1, 200);
  for (std::size_t y = height / 4; y < 3 * height / 4; ++y) {
    for (std::size_t x = width / 4; x < 3 * width / 4; ++x) {
      image(x, y) = 60;
    }
  }
  for (std::size_t x = 0; x < width; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 scene_with_square(std::size_t width, std::size_t height,
                               std::size_t x0, std::size_t y0) {
  img::ImageU8 image = scene_background(width, height);
  for (std::size_t y = y0; y < std::min(height, y0 + 5); ++y) {
    for (std::size_t x = x0; x < std::min(width, x0 + 5); ++x) {
      image(x, y) = 90;
    }
  }
  return image;
}

TEST(TraceDeterminism, GoldenBatchHashUnchangedWithTracingOn) {
  const obs::TraceSession trace;
  auto config = golden_config();
  config.trace = true;  // both enabling paths exercised
  util::ThreadPool pool(3);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto results = session.segment_many(golden_batch());
  std::uint64_t hash = kFnvOffset;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  EXPECT_EQ(hash, kGoldenBatchHash)
      << "tracing perturbed the batch pipeline";
  // One direct segment() too: the single-image path tiles its encode
  // (segment_many serialises workers to one band), so this is what
  // exercises the per-band spans.
  session.segment(golden_batch()[0]);
  // The traced run actually recorded the pipeline spans.
  const auto events = trace.events();
  EXPECT_FALSE(events.empty());
  bool saw_kmeans = false;
  bool saw_band = false;
  for (const auto& event : events) {
    saw_kmeans = saw_kmeans || std::string(event.name) == "kmeans";
    saw_band = saw_band || std::string(event.name) == "encode_band";
  }
  EXPECT_TRUE(saw_kmeans);
  EXPECT_TRUE(saw_band);
}

TEST(TraceDeterminism, GoldenStreamHashUnchangedWithTracingOn) {
  const obs::TraceSession trace;
  const core::SegHdcSession session(golden_config());
  core::SegHdcSession::Stream stream;
  std::vector<img::ImageU8> frames;
  frames.push_back(scene_background(32, 30));
  frames.push_back(scene_with_square(32, 30, 8, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));  // replay
  frames.push_back(scene_background(32, 30));
  std::uint64_t hash = kFnvOffset;
  for (const auto& frame : frames) {
    const auto warm = session.segment_stream(frame, stream);
    hash = metrics::label_map_hash(warm.result.labels, hash);
  }
  EXPECT_EQ(hash, kGoldenStreamHash)
      << "tracing perturbed the stream pipeline";
  bool saw_replay = false;
  for (const auto& event : trace.events()) {
    saw_replay = saw_replay || std::string(event.name) == "stream_replay";
  }
  EXPECT_TRUE(saw_replay);  // frame 3 is byte-identical to frame 2
}

TEST(ServerMetrics, ServedBatchShowsUpInTheRegistry) {
  const obs::TraceSession trace;
  util::ThreadPool pool(3);
  serve::ServerOptions options;
  options.queue_capacity = 2;
  options.encode_workers = 2;
  options.cluster_workers = 2;
  options.pool = &pool;
  serve::SegHdcServer server(golden_config(), options);
  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> futures;
  for (const auto& image : images) {
    futures.push_back(server.submit(image));
  }
  std::uint64_t hash = kFnvOffset;
  for (auto& future : futures) {
    hash = metrics::label_map_hash(future.get().labels, hash);
  }
  EXPECT_EQ(hash, kGoldenBatchHash)
      << "serving with tracing on perturbed labels";
  server.shutdown(serve::ShutdownMode::kDrain);

  const std::string text = server.metrics().render();
  EXPECT_NE(text.find("seghdc_requests_submitted_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_requests_completed_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_requests_failed_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_in_flight 0\n"), std::string::npos);
  EXPECT_NE(text.find("seghdc_request_latency_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("seghdc_stage_encode_seconds_count 3\n"),
            std::string::npos);

  // ServerStats is a view over the same registry.
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.latency.count, 3u);

  // The full request lifecycle shows up as spans: submit, queue_wait,
  // encode, cluster_finalize for each of the three requests.
  std::size_t submits = 0, waits = 0, encodes = 0, clusters = 0;
  for (const auto& event : trace.events()) {
    const std::string name = event.name;
    submits += name == "submit";
    waits += name == "queue_wait";
    encodes += name == "encode";
    clusters += name == "cluster_finalize";
  }
  EXPECT_EQ(submits, 3u);
  EXPECT_EQ(waits, 3u);
  EXPECT_EQ(encodes, 3u);
  EXPECT_EQ(clusters, 3u);
}

TEST(ServerMetrics, TraceSessionJsonRoundTripsThroughAServedRequest) {
  const obs::TraceSession trace;
  serve::ServerOptions options;
  options.encode_workers = 1;
  options.cluster_workers = 1;
  serve::SegHdcServer server(golden_config(), options);
  server.submit(make_gray_card(24, 20, 235)).get();
  server.shutdown(serve::ShutdownMode::kDrain);
  std::ostringstream out;
  trace.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cluster_finalize\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

}  // namespace
