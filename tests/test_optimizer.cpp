// Tests for SGD with momentum (PyTorch convention, matching the
// baseline's reference implementation).
#include <gtest/gtest.h>

#include <vector>

#include "src/nn/optimizer.hpp"

namespace {

using seghdc::nn::SgdMomentum;

TEST(SgdMomentum, PlainSgdStep) {
  std::vector<float> params{1.0F, 2.0F};
  std::vector<float> grads{0.5F, -1.0F};
  SgdMomentum optimizer(0.1, 0.0);
  optimizer.add_parameters(params, grads);
  optimizer.step();
  EXPECT_NEAR(params[0], 1.0F - 0.1F * 0.5F, 1e-6);
  EXPECT_NEAR(params[1], 2.0F + 0.1F * 1.0F, 1e-6);
}

TEST(SgdMomentum, MomentumAccumulatesVelocity) {
  std::vector<float> params{0.0F};
  std::vector<float> grads{1.0F};
  SgdMomentum optimizer(1.0, 0.5);
  optimizer.add_parameters(params, grads);
  // v1 = 1, p = -1; v2 = 0.5 + 1 = 1.5, p = -2.5; v3 = 2.25... wait:
  // PyTorch: v <- mu*v + g; p <- p - lr*v.
  optimizer.step();
  EXPECT_NEAR(params[0], -1.0F, 1e-6);
  optimizer.step();
  EXPECT_NEAR(params[0], -2.5F, 1e-6);
  optimizer.step();
  EXPECT_NEAR(params[0], -4.25F, 1e-6);
}

TEST(SgdMomentum, MultipleParameterGroups) {
  std::vector<float> a{1.0F};
  std::vector<float> ga{1.0F};
  std::vector<float> b{10.0F, 20.0F};
  std::vector<float> gb{2.0F, -2.0F};
  SgdMomentum optimizer(0.5, 0.0);
  optimizer.add_parameters(a, ga);
  optimizer.add_parameters(b, gb);
  optimizer.step();
  EXPECT_NEAR(a[0], 0.5F, 1e-6);
  EXPECT_NEAR(b[0], 9.0F, 1e-6);
  EXPECT_NEAR(b[1], 21.0F, 1e-6);
}

TEST(SgdMomentum, ZeroGradientLeavesParamsAfterVelocityDecays) {
  std::vector<float> params{0.0F};
  std::vector<float> grads{1.0F};
  SgdMomentum optimizer(1.0, 0.5);
  optimizer.add_parameters(params, grads);
  optimizer.step();  // v = 1, p = -1
  grads[0] = 0.0F;
  optimizer.step();  // v = 0.5, p = -1.5
  EXPECT_NEAR(params[0], -1.5F, 1e-6);
  optimizer.step();  // v = 0.25, p = -1.75
  EXPECT_NEAR(params[0], -1.75F, 1e-6);
}

TEST(SgdMomentum, ValidatesArguments) {
  EXPECT_THROW(SgdMomentum(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(SgdMomentum(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(SgdMomentum(0.1, -0.1), std::invalid_argument);

  SgdMomentum optimizer(0.1, 0.9);
  std::vector<float> params{1.0F, 2.0F};
  std::vector<float> grads{1.0F};
  EXPECT_THROW(optimizer.add_parameters(params, grads),
               std::invalid_argument);
}

}  // namespace
