// Tests for the thread pool: the K-Means assignment step and the conv
// GEMM depend on parallel_for visiting every index exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/parallel.hpp"

namespace {

using namespace seghdc::util;

TEST(Parallel, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(0, visits.size(), [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, NonZeroBegin) {
  std::vector<std::atomic<int>> visits(100);
  parallel_for(40, 100, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(visits[i].load(), 0);
  }
  for (std::size_t i = 40; i < 100; ++i) {
    EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(Parallel, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, SingleElement) {
  std::atomic<int> calls{0};
  parallel_for(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Parallel, SumMatchesSerial) {
  const std::size_t n = 10000;
  std::vector<long long> values(n);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> parallel_sum{0};
  parallel_for(
      0, n,
      [&](std::size_t i) {
        parallel_sum.fetch_add(values[i], std::memory_order_relaxed);
      },
      /*grain=*/16);
  const long long serial_sum =
      std::accumulate(values.begin(), values.end(), 0LL);
  EXPECT_EQ(parallel_sum.load(), serial_sum);
}

TEST(Parallel, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](std::size_t i) {
                     if (i == 57) {
                       throw std::runtime_error("body failure");
                     }
                   }),
      std::runtime_error);
}

TEST(Parallel, LargeGrainStillCoversRange) {
  std::vector<std::atomic<int>> visits(64);
  parallel_for(
      0, visits.size(),
      [&](std::size_t i) { visits[i].fetch_add(1); },
      /*grain=*/1000);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ExplicitPoolSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> visits(50, 0);
  pool.parallel_for(0, visits.size(),
                    [&](std::size_t i) { ++visits[i]; });
  for (const int v : visits) {
    EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 256, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 256);
  }
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // Every worker can be busy with an outer chunk while inner loops queue
  // more tasks; waiters must help drain instead of deadlocking.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(
      0, 8,
      [&](std::size_t) {
        pool.parallel_for(
            0, 100, [&](std::size_t) { count.fetch_add(1); },
            /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPoolTest, DeeplyNestedMixedPools) {
  ThreadPool outer(3);
  std::atomic<int> count{0};
  outer.parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 4, [&](std::size_t) {  // shared pool, nested
      outer.parallel_for(0, 16, [&](std::size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 4 * 4 * 16);
}

TEST(SerialScopeTest, RunsBodyInlineOnCallingThread) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  {
    const SerialScope serial;
    EXPECT_TRUE(SerialScope::active());
    pool.parallel_for(0, 200, [&](std::size_t) {
      if (std::this_thread::get_id() != caller) {
        off_thread.fetch_add(1);
      }
    });
  }
  EXPECT_FALSE(SerialScope::active());
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(SerialScopeTest, IsPerThread) {
  // A scope on the calling thread must not serialise the pool's workers.
  ThreadPool pool(4);
  const SerialScope serial;
  std::atomic<int> count{0};
  std::thread other([&] {
    EXPECT_FALSE(SerialScope::active());
    pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  });
  other.join();
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
