// Tests for the pixel HV producer (paper Section III-③, Fig. 5): XOR
// binding adds distances on disjoint flip sites, partially cancels on
// coinciding ones, and the bound HVs satisfy Lemma 1.
#include <gtest/gtest.h>

#include "src/core/color_encoder.hpp"
#include "src/core/pixel_producer.hpp"
#include "src/core/position_encoder.hpp"
#include "src/hdc/distances.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

TEST(PixelProducer, BindIsXor) {
  util::Rng rng(1);
  const auto position = hdc::HyperVector::random(256, rng);
  const auto color = hdc::HyperVector::random(256, rng);
  const PixelProducer producer;
  EXPECT_EQ(producer.produce(position, color), position ^ color);
}

TEST(PixelProducer, DimensionMismatchThrows) {
  const hdc::HyperVector position(8);
  const hdc::HyperVector color(9);
  const PixelProducer producer;
  EXPECT_THROW(producer.produce(position, color), std::invalid_argument);
}

TEST(PixelProducer, CountsBindWork) {
  util::Rng rng(2);
  const auto a = hdc::HyperVector::random(512, rng);
  const auto b = hdc::HyperVector::random(512, rng);
  const PixelProducer producer;
  (void)producer.produce(a, b);
  (void)producer.produce(a, b);
  EXPECT_EQ(producer.ops().bind_xor_bits, 1024u);
}

TEST(PixelProducer, Fig5bColorFlipAloneMovesDistanceOne) {
  // Fig. 5(b): flip one color bit -> pixel HV moves Hamming distance 1.
  util::Rng rng(3);
  const auto position = hdc::HyperVector::random(128, rng);
  auto color = hdc::HyperVector::random(128, rng);
  const PixelProducer producer;
  const auto y1 = producer.produce(position, color);
  color.flip(17);
  const auto y2 = producer.produce(position, color);
  EXPECT_EQ(hdc::hamming_distance(y1, y2), 1u);
}

TEST(PixelProducer, Fig5cDisjointFlipsAddDistances) {
  // Fig. 5(c): position flips bit A, color flips bit B != A -> the pixel
  // HV moves distance 2.
  util::Rng rng(4);
  auto position = hdc::HyperVector::random(128, rng);
  auto color = hdc::HyperVector::random(128, rng);
  const PixelProducer producer;
  const auto y1 = producer.produce(position, color);
  position.flip(5);
  color.flip(90);
  const auto y3 = producer.produce(position, color);
  EXPECT_EQ(hdc::hamming_distance(y1, y3), 2u);
}

TEST(PixelProducer, Fig5dCoincidingFlipsCancel) {
  // Fig. 5(d): position and color flip the SAME site -> the flips cancel
  // and the pixel HV does not move at that site.
  util::Rng rng(5);
  auto position = hdc::HyperVector::random(128, rng);
  auto color = hdc::HyperVector::random(128, rng);
  const PixelProducer producer;
  const auto y1 = producer.produce(position, color);
  position.flip(42);
  color.flip(42);
  const auto y4 = producer.produce(position, color);
  EXPECT_EQ(hdc::hamming_distance(y1, y4), 0u);
}

TEST(PixelProducer, RealEncodersDistancesAdd) {
  // With the actual encoders, position flips live in the position
  // half-regions and color flips in the ladder prefix; moving one block
  // AND one color step moves the pixel HV by x_row + uc exactly when the
  // flip sites are disjoint — verify the additive case occurs at real
  // scale.
  util::Rng rng(6);
  const PositionEncoder positions(
      PositionEncoderConfig{.dim = 4096, .rows = 8, .cols = 8,
                            .encoding = PositionEncoding::kManhattan,
                            .alpha = 1.0, .beta = 1},
      rng);
  const ColorEncoder colors(
      ColorEncoderConfig{.dim = 4096, .channels = 1}, rng);
  const PixelProducer producer;

  const auto y_base =
      producer.produce(positions.encode(0, 0), colors.channel_hv(0, 0));
  const auto y_moved =
      producer.produce(positions.encode(1, 0), colors.channel_hv(0, 10));

  const auto position_distance = hdc::hamming_distance(
      positions.encode(0, 0), positions.encode(1, 0));
  const auto color_distance = hdc::hamming_distance(
      colors.channel_hv(0, 0), colors.channel_hv(0, 10));
  const auto combined = hdc::hamming_distance(y_base, y_moved);
  // Flip sites may partially overlap (both ladders start near bit 0), so
  // combined <= sum, with equality iff disjoint; it must exceed either
  // single contribution alone minus the other (triangle band).
  EXPECT_LE(combined, position_distance + color_distance);
  EXPECT_GE(combined + 2 * std::min(position_distance, color_distance),
            position_distance + color_distance);
  EXPECT_GT(combined, 0u);
}

TEST(PixelProducer, Lemma1BoundHvPseudoOrthogonalToInputs) {
  // Lemma 1: the bound pixel HV is pseudo-orthogonal to both factors.
  util::Rng rng(7);
  const auto position = hdc::HyperVector::random(10000, rng);
  const auto color = hdc::HyperVector::random(10000, rng);
  const PixelProducer producer;
  const auto pixel = producer.produce(position, color);
  EXPECT_NEAR(hdc::normalized_hamming(pixel, position), 0.5, 0.03);
  EXPECT_NEAR(hdc::normalized_hamming(pixel, color), 0.5, 0.03);
}

TEST(PixelProducer, BindingPreservesRecovery) {
  // XOR binding is invertible: pixel ^ position == color.
  util::Rng rng(8);
  const auto position = hdc::HyperVector::random(1000, rng);
  const auto color = hdc::HyperVector::random(1000, rng);
  const PixelProducer producer;
  const auto pixel = producer.produce(position, color);
  EXPECT_EQ(pixel ^ position, color);
  EXPECT_EQ(pixel ^ color, position);
}

}  // namespace
