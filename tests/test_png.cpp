// Tests for PNG I/O: gray/RGB round-trips through the library's own
// fixed-Huffman writer, decoding of a reference zlib-compressed fixture
// (dynamic Huffman, all five scanline filters), PNG<->PNM pixel
// equality, content-sniffing read_image / extension-dispatch
// write_image, and the hardening suite: truncated files, CRC and Adler
// mismatches, unsupported variants (palette, 16-bit, Adam7 interlace)
// and oversized headers. Every diagnostic message is pinned, mirroring
// the PNM loader tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/imaging/png.hpp"
#include "src/imaging/pnm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::img;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PngCleanup : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : paths_) {
      std::filesystem::remove(path);
    }
  }
  std::string track(const std::string& path) {
    paths_.push_back(path);
    return path;
  }
  std::vector<std::string> paths_;
};

using Bytes = std::vector<unsigned char>;

void write_bytes(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Bytes read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void expect_png_error(const std::string& path, const Bytes& bytes,
                      const std::string& needle) {
  write_bytes(path, bytes);
  try {
    read_png(path);
    FAIL() << "expected read_png to reject: " << needle;
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual message: " << error.what();
  }
}

// Test-side CRC-32 so malformed fixtures can carry VALID chunk CRCs —
// the reader verifies the CRC before parsing, so a crafted IHDR with a
// stale checksum would only ever exercise the CRC error path.
std::uint32_t test_crc32(const unsigned char* data, std::size_t size) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

void append_be32(Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<unsigned char>(value >> 24));
  out.push_back(static_cast<unsigned char>(value >> 16));
  out.push_back(static_cast<unsigned char>(value >> 8));
  out.push_back(static_cast<unsigned char>(value));
}

void append_chunk(Bytes& out, const char* type, const Bytes& data) {
  append_be32(out, static_cast<std::uint32_t>(data.size()));
  Bytes typed(type, type + 4);
  typed.insert(typed.end(), data.begin(), data.end());
  out.insert(out.end(), typed.begin(), typed.end());
  append_be32(out, test_crc32(typed.data(), typed.size()));
}

Bytes png_signature() {
  return Bytes{137, 80, 78, 71, 13, 10, 26, 10};
}

/// Signature + a checksummed IHDR with the given fields (no IDAT/IEND):
/// enough to reach every header-validation branch in the reader.
Bytes png_with_ihdr(std::uint32_t width, std::uint32_t height,
                    unsigned char bit_depth, unsigned char color_type,
                    unsigned char interlace) {
  Bytes file = png_signature();
  Bytes ihdr;
  append_be32(ihdr, width);
  append_be32(ihdr, height);
  ihdr.push_back(bit_depth);
  ihdr.push_back(color_type);
  ihdr.push_back(0);  // compression
  ihdr.push_back(0);  // filter
  ihdr.push_back(interlace);
  append_chunk(file, "IHDR", ihdr);
  return file;
}

/// An 80x60 gray PNG produced by a reference zlib encoder (level 9:
/// dynamic-Huffman DEFLATE) whose scanlines cycle through all five PNG
/// filter types (row y uses filter y % 5). Pixel (x, y) =
/// (x*x*3 + y*17 + (x*y)%7) % 256. Decoding this exercises every
/// reader path our own run-matching fixed-Huffman writer never emits.
constexpr unsigned char kReferencePng[] = {
137, 80, 78, 71, 13, 10, 26, 10, 0, 0, 0, 13,
    73, 72, 68, 82, 0, 0, 0, 80, 0, 0, 0, 60,
    8, 0, 0, 0, 0, 212, 76, 98, 80, 0, 0, 11,
    76, 73, 68, 65, 84, 120, 218, 205, 150, 121, 56, 148,
    235, 27, 199, 103, 204, 140, 37, 51, 24, 51, 6, 67,
    152, 25, 75, 182, 49, 200, 26, 202, 30, 134, 156, 108,
    51, 134, 172, 145, 101, 56, 69, 180, 156, 54, 138, 78,
    251, 190, 80, 84, 206, 233, 148, 117, 100, 141, 98, 72,
    8, 81, 201, 158, 157, 22, 203, 88, 98, 74, 11, 231,
    157, 25, 245, 155, 186, 126, 231, 234, 159, 254, 232, 175,
    239, 117, 63, 215, 253, 62, 239, 123, 61, 223, 239, 123,
    63, 31, 16, 8, 2, 151, 35, 57, 69, 158, 101, 190,
    213, 138, 96, 124, 36, 103, 128, 130, 154, 214, 48, 52,
    179, 245, 153, 110, 19, 71, 73, 61, 199, 172, 65, 15,
    142, 209, 72, 162, 19, 173, 204, 130, 236, 44, 70, 121,
    211, 48, 136, 64, 222, 205, 24, 215, 138, 97, 162, 34,
    27, 73, 169, 240, 68, 80, 34, 60, 149, 212, 24, 137,
    98, 198, 104, 141, 51, 118, 147, 9, 96, 36, 116, 133,
    4, 70, 30, 143, 35, 174, 54, 93, 103, 71, 118, 162,
    108, 10, 14, 255, 61, 110, 123, 194, 225, 19, 231, 82,
    174, 165, 103, 223, 41, 173, 168, 105, 120, 212, 254, 98,
    232, 53, 107, 238, 45, 72, 16, 46, 41, 163, 176, 82,
    131, 100, 104, 102, 181, 222, 222, 221, 219, 63, 36, 114,
    219, 214, 189, 7, 143, 156, 186, 112, 37, 245, 86, 110,
    97, 25, 179, 246, 225, 179, 78, 1, 164, 36, 10, 45,
    38, 46, 241, 211, 4, 130, 135, 75, 192, 165, 81, 88,
    44, 238, 111, 156, 214, 170, 60, 29, 195, 50, 67, 75,
    115, 155, 26, 167, 22, 167, 246, 103, 212, 46, 255, 224,
    129, 241, 80, 22, 107, 126, 97, 126, 255, 31, 16, 200,
    10, 177, 21, 82, 72, 25, 25, 69, 130, 98, 166, 170,
    182, 118, 161, 241, 234, 181, 107, 170, 173, 30, 57, 63,
    114, 127, 226, 229, 213, 23, 216, 247, 102, 52, 114, 226,
    237, 59, 40, 82, 72, 16, 37, 134, 1, 246, 38, 161,
    185, 2, 255, 34, 167, 190, 84, 181, 72, 201, 49, 244,
    123, 204, 180, 32, 68, 64, 156, 175, 197, 11, 254, 237,
    3, 37, 60, 1, 121, 248, 6, 111, 61, 250, 215, 131,
    215, 88, 167, 132, 90, 145, 141, 215, 63, 83, 238, 170,
    157, 19, 218, 47, 120, 20, 147, 107, 59, 116, 200, 96,
    228, 50, 77, 126, 152, 113, 36, 200, 138, 40, 187, 2,
    12, 19, 70, 170, 153, 121, 237, 184, 217, 42, 104, 119,
    168, 65, 138, 94, 131, 59, 58, 23, 212, 233, 221, 19,
    200, 254, 19, 95, 69, 151, 121, 148, 108, 35, 244, 228,
    230, 110, 112, 136, 136, 176, 24, 26, 171, 164, 170, 175,
    103, 108, 97, 227, 232, 234, 235, 19, 184, 37, 42, 118,
    87, 114, 210, 177, 51, 151, 210, 254, 202, 103, 20, 223,
    171, 174, 111, 238, 233, 30, 120, 57, 49, 251, 30, 198,
    243, 79, 135, 231, 31, 149, 231, 95, 34, 207, 191, 28,
    158, 127, 29, 237, 2, 72, 81, 56, 130, 115, 156, 63,
    75, 32, 206, 162, 226, 146, 24, 217, 149, 151, 149, 148,
    213, 52, 115, 245, 136, 69, 38, 102, 76, 235, 58, 235,
    6, 151, 167, 30, 157, 47, 40, 253, 195, 33, 99, 147,
    51, 244, 185, 247, 31, 151, 4, 4, 5, 68, 16, 18,
    104, 105, 57, 105, 5, 188, 138, 186, 22, 73, 75, 223,
    168, 204, 162, 202, 214, 114, 61, 121, 67, 171, 103, 183,
    103, 239, 96, 240, 235, 241, 169, 136, 109, 108, 40, 18,
    38, 138, 4, 246, 198, 115, 124, 183, 231, 218, 31, 252,
    127, 194, 192, 102, 127, 134, 66, 193, 66, 8, 56, 255,
    98, 0, 95, 203, 109, 20, 186, 144, 91, 129, 50, 25,
    247, 234, 250, 217, 88, 115, 122, 70, 39, 150, 118, 155,
    237, 202, 16, 223, 253, 114, 83, 27, 117, 56, 82, 224,
    162, 73, 247, 97, 179, 169, 188, 40, 83, 88, 111, 249,
    165, 132, 136, 0, 79, 138, 127, 232, 238, 19, 185, 143,
    23, 52, 125, 82, 58, 112, 225, 76, 249, 248, 126, 187,
    50, 237, 28, 253, 82, 199, 158, 157, 24, 230, 239, 138,
    61, 23, 54, 169, 44, 180, 130, 203, 129, 216, 72, 42,
    42, 40, 235, 146, 204, 205, 28, 214, 187, 208, 188, 67,
    67, 98, 182, 237, 56, 116, 240, 244, 169, 171, 87, 110,
    228, 229, 150, 151, 213, 213, 54, 117, 117, 142, 142, 204,
    76, 179, 57, 177, 145, 195, 42, 105, 107, 153, 24, 219,
    218, 56, 122, 121, 6, 5, 70, 71, 197, 30, 216, 127,
    252, 216, 229, 75, 105, 89, 153, 37, 197, 15, 170, 235,
    219, 158, 115, 254, 20, 132, 20, 247, 99, 127, 142, 64,
    226, 197, 196, 144, 167, 165, 100, 228, 9, 4, 85, 85,
    13, 237, 124, 99, 227, 242, 53, 149, 86, 118, 206, 143,
    93, 159, 184, 119, 208, 2, 135, 70, 55, 191, 153, 152,
    126, 23, 255, 225, 195, 34, 24, 6, 135, 139, 139, 163,
    48, 88, 28, 78, 89, 121, 149, 166, 142, 97, 177, 201,
    93, 243, 117, 53, 78, 141, 46, 205, 207, 60, 186, 252,
    7, 134, 131, 66, 199, 88, 243, 219, 161, 72, 136, 8,
    119, 239, 31, 101, 226, 163, 192, 194, 18, 76, 148, 127,
    145, 250, 77, 75, 206, 114, 5, 90, 130, 32, 86, 234,
    111, 216, 122, 134, 57, 71, 140, 42, 4, 57, 101, 128,
    55, 183, 172, 45, 210, 200, 94, 93, 237, 57, 125, 74,
    167, 231, 184, 45, 164, 238, 180, 55, 9, 206, 106, 175,
    41, 205, 202, 202, 191, 223, 242, 10, 134, 39, 255, 113,
    135, 69, 218, 81, 137, 162, 63, 214, 79, 71, 38, 128,
    14, 138, 165, 173, 126, 18, 129, 170, 218, 174, 51, 85,
    180, 139, 172, 12, 150, 0, 98, 35, 177, 146, 128, 215,
    49, 88, 99, 106, 239, 76, 166, 250, 109, 14, 222, 26,
    31, 151, 248, 231, 201, 19, 169, 215, 175, 229, 20, 220,
    45, 125, 216, 216, 208, 209, 59, 60, 52, 53, 63, 199,
    137, 141, 172, 162, 130, 166, 174, 145, 161, 181, 195, 122,
    15, 90, 128, 63, 61, 102, 219, 190, 67, 71, 143, 92,
    188, 122, 229, 118, 94, 81, 97, 85, 93, 109, 107, 215,
    207, 55, 5, 143, 16, 65, 75, 200, 73, 203, 225, 211,
    212, 85, 72, 217, 36, 163, 2, 11, 83, 91, 203, 135,
    228, 122, 183, 150, 110, 207, 238, 0, 223, 215, 35, 209,
    227, 83, 236, 217, 207, 59, 15, 130, 160, 162, 66, 146,
    98, 178, 82, 178, 74, 242, 106, 25, 68, 13, 98, 145,
    174, 153, 177, 117, 165, 117, 131, 221, 83, 231, 78, 119,
    74, 63, 237, 229, 208, 100, 216, 228, 220, 52, 20, 41,
    44, 196, 219, 91, 247, 187, 23, 94, 250, 82, 213, 1,
    50, 43, 37, 62, 35, 4, 133, 136, 240, 181, 80, 190,
    251, 180, 124, 158, 128, 220, 125, 55, 199, 36, 95, 175,
    122, 133, 37, 31, 172, 22, 116, 189, 246, 153, 90, 78,
    56, 13, 219, 39, 120, 76, 38, 211, 106, 224, 160, 193,
    104, 170, 151, 236, 96, 222, 145, 96, 27, 13, 140, 48,
    8, 38, 130, 34, 152, 120, 196, 223, 124, 46, 108, 149,
    80, 143, 166, 63, 36, 36, 207, 4, 116, 120, 191, 8,
    158, 77, 82, 98, 210, 101, 27, 19, 45, 97, 45, 55,
    255, 0, 111, 134, 136, 136, 75, 201, 225, 212, 180, 245,
    77, 214, 218, 58, 253, 230, 229, 27, 20, 22, 189, 125,
    247, 129, 228, 227, 103, 47, 167, 255, 157, 149, 95, 114,
    255, 193, 163, 150, 182, 158, 193, 87, 147, 111, 57, 177,
    65, 74, 175, 36, 168, 3, 254, 89, 218, 59, 187, 1,
    254, 69, 108, 141, 223, 3, 248, 119, 62, 245, 250, 63,
    128, 127, 149, 15, 27, 159, 118, 112, 239, 20, 41, 140,
    244, 79, 19, 8, 25, 46, 142, 18, 199, 96, 83, 112,
    202, 171, 148, 179, 116, 116, 138, 77, 204, 239, 174, 171,
    177, 105, 116, 121, 230, 210, 214, 69, 29, 24, 14, 29,
    30, 99, 69, 205, 191, 255, 244, 126, 9, 184, 83, 16,
    72, 4, 26, 184, 83, 240, 170, 120, 117, 237, 156, 213,
    70, 229, 70, 21, 86, 86, 14, 100, 215, 38, 183, 14,
    175, 190, 193, 205, 1, 175, 39, 34, 99, 128, 241, 37,
    8, 23, 5, 142, 147, 192, 57, 92, 203, 255, 10, 195,
    244, 180, 212, 34, 12, 38, 32, 44, 132, 254, 186, 232,
    32, 137, 162, 241, 181, 100, 126, 121, 0, 116, 155, 81,
    252, 168, 231, 131, 140, 25, 253, 106, 55, 198, 239, 159,
    121, 215, 76, 100, 252, 152, 207, 115, 106, 111, 212, 98,
    170, 81, 215, 97, 195, 153, 172, 109, 198, 208, 222, 162,
    148, 189, 209, 126, 30, 20, 239, 176, 248, 51, 217, 77,
    11, 42, 155, 46, 244, 40, 134, 49, 49, 59, 123, 28,
    75, 181, 114, 180, 203, 236, 250, 227, 165, 152, 225, 184,
    142, 20, 31, 229, 133, 199, 224, 50, 32, 54, 88, 89,
    69, 21, 61, 93, 35, 27, 107, 135, 13, 62, 180, 128,
    40, 122, 204, 206, 164, 67, 71, 47, 93, 188, 154, 193,
    200, 43, 170, 174, 170, 123, 220, 221, 213, 63, 49, 62,
    243, 14, 136, 13, 6, 240, 143, 168, 173, 191, 14, 240,
    143, 226, 229, 27, 14, 248, 151, 112, 32, 249, 28, 224,
    95, 118, 86, 126, 5, 224, 95, 123, 219, 207, 191, 232,
    227, 133, 68, 197, 36, 165, 100, 229, 229, 149, 8, 106,
    26, 196, 124, 93, 131, 82, 179, 74, 107, 59, 187, 6,
    231, 167, 238, 157, 52, 90, 255, 80, 200, 155, 201, 233,
    233, 216, 119, 31, 23, 5, 96, 48, 17, 184, 4, 74,
    26, 155, 162, 128, 83, 89, 165, 165, 163, 83, 96, 104,
    106, 110, 89, 99, 83, 239, 212, 178, 209, 179, 139, 218,
    59, 16, 28, 58, 206, 98, 109, 131, 114, 217, 230, 135,
    97, 152, 255, 4, 89, 193, 101, 27, 160, 210, 88, 94,
    244, 254, 166, 37, 119, 185, 2, 45, 66, 196, 20, 117,
    200, 209, 167, 153, 243, 164, 240, 252, 69, 199, 12, 129,
    208, 70, 179, 2, 245, 108, 131, 154, 141, 147, 39, 136,
    61, 39, 236, 151, 106, 78, 82, 73, 136, 233, 103, 85,
    197, 153, 89, 119, 42, 27, 71, 32, 56, 242, 158, 194,
    49, 237, 184, 10, 84, 84, 139, 206, 21, 241, 3, 160,
    67, 18, 41, 186, 205, 225, 168, 234, 120, 205, 137, 130,
    157, 100, 21, 176, 56, 16, 27, 25, 105, 101, 2, 201,
    208, 192, 202, 210, 197, 217, 219, 223, 47, 50, 98, 71,
    252, 193, 35, 127, 94, 56, 127, 227, 122, 110, 97, 1,
    179, 178, 169, 177, 179, 175, 119, 236, 13, 123, 158, 19,
    27, 148, 146, 162, 150, 158, 174, 133, 185, 163, 131, 167,
    15, 109, 75, 104, 108, 204, 254, 164, 67, 103, 78, 167,
    93, 205, 100, 228, 221, 43, 175, 175, 123, 222, 45, 192,
    71, 51, 63, 69, 32, 56, 4, 2, 33, 131, 150, 145,
    195, 223, 192, 107, 171, 231, 144, 140, 74, 140, 172, 44,
    172, 30, 146, 155, 200, 29, 173, 94, 221, 1, 1, 131,
    19, 91, 38, 166, 216, 108, 246, 129, 61, 96, 168, 168,
    168, 40, 6, 128, 2, 37, 37, 165, 44, 53, 77, 98,
    145, 129, 1, 19, 128, 130, 6, 199, 6, 15, 0, 10,
    250, 253, 250, 199, 94, 134, 79, 206, 205, 65, 145, 0,
    219, 112, 13, 215, 251, 46, 5, 103, 190, 84, 245, 128,
    188, 253, 32, 62, 43, 204, 97, 155, 255, 181, 80, 249,
    145, 224, 154, 36, 234, 14, 239, 57, 144, 155, 167, 95,
    84, 98, 90, 229, 75, 148, 221, 190, 10, 136, 75, 58,
    219, 173, 88, 241, 4, 100, 239, 82, 18, 234, 230, 218,
    190, 68, 98, 255, 5, 55, 76, 127, 110, 226, 166, 181,
    170, 40, 193, 37, 142, 127, 134, 110, 113, 233, 205, 16,
    139, 125, 181, 168, 144, 74, 133, 68, 150, 95, 187, 91,
    187, 31, 43, 81, 161, 50, 4, 85, 187, 207, 2, 210,
    156, 30, 7, 14, 254, 229, 145, 152, 204, 67, 226, 20,
    156, 10, 78, 235, 22, 48, 190, 76, 13, 171, 204, 129,
    241, 181, 161, 209, 243, 25, 48, 190, 70, 252, 199, 95,
    1, 227, 107, 97, 30, 244, 137, 31, 137, 53, 84, 129,
    241, 101, 92, 184, 182, 28, 24, 95, 206, 14, 207, 93,
    129, 241, 53, 180, 233, 205, 40, 48, 190, 190, 34, 177,
    50, 199, 119, 135, 255, 10, 3, 128, 196, 75, 223, 33,
    177, 163, 36, 60, 136, 175, 37, 11, 142, 46, 230, 33,
    241, 45, 70, 73, 77, 223, 59, 204, 26, 122, 90, 155,
    172, 207, 223, 115, 174, 89, 240, 93, 175, 188, 91, 169,
    125, 97, 224, 75, 6, 157, 135, 141, 38, 114, 163, 13,
    33, 189, 197, 231, 15, 68, 250, 186, 83, 104, 193, 187,
    78, 102, 54, 46, 168, 82, 47, 119, 174, 220, 194, 148,
    142, 237, 179, 47, 214, 204, 33, 22, 57, 188, 216, 142,
    102, 70, 200, 119, 95, 244, 38, 44, 52, 131, 239, 254,
    242, 72, 28, 199, 67, 98, 89, 14, 18, 19, 245, 114,
    13, 76, 238, 173, 123, 96, 111, 237, 232, 242, 91, 27,
    229, 5, 197, 111, 24, 72, 255, 204, 100, 236, 14, 126,
    36, 78, 91, 70, 226, 18, 83, 11, 75, 219, 170, 245,
    77, 0, 18, 123, 183, 251, 14, 142, 108, 137, 152, 26,
    159, 141, 227, 34, 177, 196, 15, 195, 192, 143, 196, 154,
    203, 139, 180, 111, 90, 242, 150, 43, 208, 103, 136, 56,
    86, 207, 129, 126, 138, 201, 214, 164, 231, 126, 114, 200,
    128, 4, 54, 155, 228, 175, 202, 54, 172, 244, 24, 59,
    166, 221, 115, 210, 74, 160, 234, 56, 133, 36, 54, 222,
    86, 81, 120, 59, 171, 160, 172, 121, 16, 172, 68, 222,
    155, 55, 169, 17, 123, 31, 21, 221, 160, 119, 25, 177,
    31, 148, 36, 122, 149, 216, 20, 134, 122, 176, 141, 248,
    38, 127, 7, 89, 21, 44, 246, 203, 35, 49, 14, 64,
    98, 36, 7, 137, 51, 0, 36, 206, 209, 53, 46, 93,
    3, 32, 113, 45, 7, 137, 159, 123, 245, 4, 6, 142,
    142, 134, 1, 72, 252, 238, 195, 174, 189, 60, 36, 62,
    203, 69, 226, 191, 0, 36, 46, 54, 4, 144, 152, 105,
    211, 232, 212, 236, 2, 32, 241, 128, 255, 240, 240, 171,
    112, 214, 252, 60, 23, 137, 185, 134, 235, 127, 181, 63,
    154, 43, 103, 191, 132, 225, 17, 79, 184, 108, 35, 38,
    253, 53, 33, 110, 112, 196, 230, 175, 121, 185, 46, 10,
    47, 88, 70, 226, 141, 158, 254, 191, 39, 221, 168, 25,
    69, 217, 31, 168, 18, 114, 75, 99, 187, 151, 226, 207,
    8, 239, 89, 74, 150, 186, 109, 61, 156, 64, 28, 184,
    228, 137, 29, 201, 73, 244, 179, 84, 151, 22, 93, 92,
    132, 74, 224, 77, 41, 219, 211, 91, 96, 150, 137, 141,
    146, 33, 76, 165, 164, 217, 224, 54, 183, 142, 128, 153,
    100, 66, 69, 8, 186, 62, 193, 74, 248, 113, 122, 60,
    56, 232, 151, 71, 98, 39, 30, 18, 167, 226, 21, 212,
    85, 24, 90, 164, 18, 125, 139, 50, 219, 42, 219, 166,
    245, 173, 27, 186, 219, 189, 7, 123, 183, 140, 76, 141,
    71, 3, 72, 188, 0, 229, 71, 98, 2, 81, 35, 215,
    64, 247, 158, 241, 131, 181, 214, 142, 118, 191, 61, 166,
    60, 167, 244, 247, 132, 12, 77, 190, 161, 199, 126, 69,
    98, 21, 206, 43, 172, 255, 243, 189, 179, 82, 32, 208,
    183, 72, 236, 36, 137, 242, 229, 107, 201, 70, 33, 42,
    120, 127, 202, 63, 140, 210, 218, 238, 57, 180, 41, 61,
    189, 67, 138, 154, 241, 214, 53, 91, 44, 110, 132, 242,
    140, 218, 31, 241, 249, 188, 126, 199, 97, 99, 86, 102,
    228, 106, 129, 222, 146, 139, 123, 194, 104, 110, 20, 159,
    144, 184, 99, 183, 26, 22, 212, 104, 231, 219, 228, 66,
    153, 50, 113, 221, 54, 133, 26, 57, 58, 37, 182, 93,
    49, 40, 102, 164, 66, 251, 57, 10, 126, 161, 5, 92,
    250, 203, 35, 113, 28, 15, 137, 177, 28, 36, 214, 212,
    201, 51, 52, 185, 111, 194, 180, 177, 113, 114, 217, 216,
    236, 209, 69, 245, 31, 126, 21, 52, 198, 98, 109, 223,
    193, 143, 196, 233, 92, 36, 214, 94, 93, 178, 198, 200,
    194, 170, 218, 161, 9, 64, 98, 175, 142, 77, 131, 163,
    1, 91, 38, 38, 222, 198, 113, 145, 88, 230, 135, 97,
    224, 71, 98, 173, 229, 69, 159, 111, 90, 24, 203, 213,
    191, 75, 213, 204, 194, 26, 238, 19, 151, 0, 0, 0,
    0, 73, 69, 78, 68, 174, 66, 96, 130};

Bytes reference_png() {
  return Bytes(kReferencePng, kReferencePng + sizeof(kReferencePng));
}

constexpr std::size_t kRefWidth = 80;
constexpr std::size_t kRefHeight = 60;

std::uint8_t reference_pixel(std::size_t x, std::size_t y) {
  return static_cast<std::uint8_t>((x * x * 3 + y * 17 + (x * y) % 7) %
                                   256);
}

// ---------------------------------------------------------------------
// Round trips through the library's own writer.
// ---------------------------------------------------------------------

TEST_F(PngCleanup, GrayRoundTrip) {
  seghdc::util::Rng rng(11);
  ImageU8 image(37, 23, 1);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_png_gray.png"));
  write_png(image, path);
  EXPECT_EQ(read_png(path), image);
}

TEST_F(PngCleanup, RgbRoundTrip) {
  seghdc::util::Rng rng(12);
  ImageU8 image(19, 31, 3);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_png_rgb.png"));
  write_png(image, path);
  EXPECT_EQ(read_png(path), image);
}

TEST_F(PngCleanup, FlatMaskCompressesAndRoundTrips) {
  // Label-mask-shaped content: long flat runs. The run-matching DEFLATE
  // writer must both reproduce it exactly and actually compress it.
  ImageU8 mask(128, 96, 1, 0);
  for (std::size_t y = 20; y < 70; ++y) {
    for (std::size_t x = 30; x < 100; ++x) {
      mask.at(x, y, 0) = 255;
    }
  }
  const auto path = track(temp_path("seghdc_png_mask.png"));
  write_png(mask, path);
  EXPECT_EQ(read_png(path), mask);
  EXPECT_LT(std::filesystem::file_size(path), mask.pixels().size() / 4)
      << "flat-run image did not compress";
}

TEST(Png, WriteRejectsUnsupportedChannelCounts) {
  EXPECT_THROW(write_png(ImageU8(4, 4, 2), temp_path("seghdc_bad2.png")),
               std::invalid_argument);
  EXPECT_THROW(write_png(ImageU8(4, 4, 4), temp_path("seghdc_bad4.png")),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Reference fixture: dynamic Huffman + all five filters.
// ---------------------------------------------------------------------

TEST_F(PngCleanup, DecodesReferenceDynamicHuffmanAllFilters) {
  const auto path = track(temp_path("seghdc_png_reference.png"));
  write_bytes(path, reference_png());
  const auto image = read_png(path);
  ASSERT_EQ(image.width(), kRefWidth);
  ASSERT_EQ(image.height(), kRefHeight);
  ASSERT_EQ(image.channels(), 1u);
  for (std::size_t y = 0; y < kRefHeight; ++y) {
    for (std::size_t x = 0; x < kRefWidth; ++x) {
      ASSERT_EQ(image.at(x, y, 0), reference_pixel(x, y))
          << "pixel (" << x << ", " << y << ")";
    }
  }
}

// ---------------------------------------------------------------------
// PNG <-> PNM parity and the dispatch helpers.
// ---------------------------------------------------------------------

TEST_F(PngCleanup, PngAndPnmCarryIdenticalPixels) {
  seghdc::util::Rng rng(13);
  ImageU8 gray(29, 17, 1);
  for (auto& v : gray.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  ImageU8 rgb(14, 21, 3);
  for (auto& v : rgb.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto gray_png = track(temp_path("seghdc_parity.png"));
  const auto gray_pgm = track(temp_path("seghdc_parity.pgm"));
  const auto rgb_png = track(temp_path("seghdc_parity_rgb.png"));
  const auto rgb_ppm = track(temp_path("seghdc_parity_rgb.ppm"));
  write_png(gray, gray_png);
  write_pgm(gray, gray_pgm);
  write_png(rgb, rgb_png);
  write_ppm(rgb, rgb_ppm);
  EXPECT_EQ(read_image(gray_png), read_image(gray_pgm));
  EXPECT_EQ(read_image(rgb_png), read_image(rgb_ppm));
}

TEST_F(PngCleanup, IsPngFileSniffsSignatureNotExtension) {
  const auto png_path = track(temp_path("seghdc_sniff.bin"));
  write_bytes(png_path, reference_png());
  EXPECT_TRUE(is_png_file(png_path));

  const auto pgm_path = track(temp_path("seghdc_sniff.png"));
  write_pgm(ImageU8(3, 3, 1, 7), pgm_path);  // PNM bytes, lying extension
  EXPECT_FALSE(is_png_file(pgm_path));

  EXPECT_FALSE(is_png_file(temp_path("seghdc_sniff_missing.png")));
}

TEST_F(PngCleanup, ReadImageSniffsContent) {
  // Both formats load through read_image regardless of extension.
  const auto png_as_dat = track(temp_path("seghdc_content_a.dat"));
  write_bytes(png_as_dat, reference_png());
  EXPECT_EQ(read_image(png_as_dat).width(), kRefWidth);

  const auto pnm_as_dat = track(temp_path("seghdc_content_b.dat"));
  write_pgm(ImageU8(5, 4, 1, 9), pnm_as_dat);
  EXPECT_EQ(read_image(pnm_as_dat).width(), 5u);

  const auto garbage = track(temp_path("seghdc_content_c.dat"));
  write_bytes(garbage, Bytes{'n', 'o', 't', ' ', 'a', 'n', ' ', 'i',
                             'm', 'a', 'g', 'e'});
  EXPECT_THROW(read_image(garbage), std::runtime_error);
}

TEST_F(PngCleanup, WriteImageDispatchesOnExtension) {
  const ImageU8 gray(6, 5, 1, 31);
  const ImageU8 rgb(6, 5, 3, 32);
  const auto png_path = track(temp_path("seghdc_dispatch.png"));
  const auto pgm_path = track(temp_path("seghdc_dispatch.pgm"));
  const auto ppm_path = track(temp_path("seghdc_dispatch.ppm"));
  write_image(gray, png_path);
  write_image(gray, pgm_path);
  write_image(rgb, ppm_path);
  EXPECT_TRUE(is_png_file(png_path));
  EXPECT_EQ(read_image(png_path), gray);
  EXPECT_EQ(read_image(pgm_path), gray);
  EXPECT_EQ(read_image(ppm_path), rgb);
  EXPECT_THROW(write_image(gray, temp_path("seghdc_dispatch.jpg")),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Hardening: every rejection is a pinned hard error, like read_pnm.
// ---------------------------------------------------------------------

TEST_F(PngCleanup, RejectsBadSignature) {
  expect_png_error(track(temp_path("seghdc_badsig.png")),
                   Bytes{'G', 'I', 'F', '8', '9', 'a', 0, 0, 0, 0, 0, 0},
                   "not a PNG file (bad signature)");
}

TEST_F(PngCleanup, RejectsTruncatedChunkHeader) {
  auto file = png_signature();
  file.insert(file.end(), {0, 0, 0, 13, 'I', 'H'});  // cut mid chunk type
  expect_png_error(track(temp_path("seghdc_trunc_hdr.png")), file,
                   "truncated chunk");
}

TEST_F(PngCleanup, RejectsTruncatedChunkPayload) {
  auto file = reference_png();
  file.resize(file.size() - 20);  // cut into the IEND/IDAT tail
  expect_png_error(track(temp_path("seghdc_trunc_tail.png")), file,
                   "truncated chunk");
}

TEST_F(PngCleanup, RejectsCrcMismatch) {
  auto file = reference_png();
  file[60] ^= 0x40;  // flip one bit inside the IDAT payload
  expect_png_error(track(temp_path("seghdc_crc.png")), file,
                   "chunk CRC mismatch in 'IDAT'");
}

TEST_F(PngCleanup, RejectsInterlacedPng) {
  expect_png_error(track(temp_path("seghdc_adam7.png")),
                   png_with_ihdr(8, 8, 8, 0, 1),
                   "interlaced (Adam7) PNG is not supported");
}

TEST_F(PngCleanup, Rejects16BitDepth) {
  expect_png_error(track(temp_path("seghdc_16bit.png")),
                   png_with_ihdr(8, 8, 16, 0, 0),
                   "unsupported bit depth 16 (8-bit only)");
}

TEST_F(PngCleanup, RejectsPaletteColorType) {
  expect_png_error(track(temp_path("seghdc_palette.png")),
                   png_with_ihdr(8, 8, 8, 3, 0),
                   "unsupported color type 3 (palette)");
}

TEST_F(PngCleanup, RejectsZeroDimensions) {
  expect_png_error(track(temp_path("seghdc_zero.png")),
                   png_with_ihdr(0, 8, 8, 0, 0), "zero image dimensions");
}

TEST_F(PngCleanup, RejectsOversizedHeaderBeforeAllocating) {
  // Same 2 GiB guard as read_pnm (PR 7): absurd headers must fail before
  // any buffer is sized from them.
  expect_png_error(track(temp_path("seghdc_huge.png")),
                   png_with_ihdr(50000, 50000, 8, 0, 0),
                   "exceeds the 2 GiB loader limit");
}

TEST_F(PngCleanup, RejectsHeaderWhoseProductOverflows) {
  expect_png_error(track(temp_path("seghdc_overflow.png")),
                   png_with_ihdr(0xFFFFFFFFu, 0xFFFFFFFFu, 8, 0, 0),
                   "overflow size_t");
}

TEST_F(PngCleanup, RejectsUnknownCriticalChunk) {
  auto file = png_with_ihdr(4, 4, 8, 0, 0);
  append_chunk(file, "CMYK", Bytes{1, 2, 3});  // critical: uppercase 'C'
  expect_png_error(track(temp_path("seghdc_critical.png")), file,
                   "unsupported critical chunk 'CMYK'");
}

TEST_F(PngCleanup, IgnoresAncillaryChunks) {
  // Ancillary chunks (lowercase first letter) are skipped, not fatal.
  const auto src = track(temp_path("seghdc_ancillary_src.png"));
  const ImageU8 image(7, 6, 1, 42);
  write_png(image, src);
  const auto bytes = read_bytes(src);

  Bytes with_text(bytes.begin(), bytes.begin() + 8 + 25);  // sig + IHDR
  append_chunk(with_text, "tEXt",
               Bytes{'k', 0, 'v', 'a', 'l', 'u', 'e'});
  with_text.insert(with_text.end(), bytes.begin() + 8 + 25, bytes.end());

  const auto path = track(temp_path("seghdc_ancillary.png"));
  write_bytes(path, with_text);
  EXPECT_EQ(read_png(path), image);
}

TEST_F(PngCleanup, RejectsMissingIdat) {
  auto file = png_with_ihdr(4, 4, 8, 0, 0);
  append_chunk(file, "IEND", Bytes{});
  expect_png_error(track(temp_path("seghdc_noidat.png")), file,
                   "missing IDAT");
}

TEST_F(PngCleanup, RejectsIdatBeforeIhdr) {
  auto file = png_signature();
  append_chunk(file, "IDAT", Bytes{1, 2, 3});
  expect_png_error(track(temp_path("seghdc_idatfirst.png")), file,
                   "IDAT before IHDR");
}

/// Rebuilds a single-IDAT file (our writer's layout: signature, IHDR,
/// IDAT, IEND) with the IDAT payload replaced — chunk length and CRC
/// recomputed so only the intended corruption is visible to the reader.
Bytes with_idat_payload(const Bytes& file, const Bytes& payload) {
  constexpr std::size_t kIdatStart = 8 + 25;  // after signature + IHDR
  Bytes out(file.begin(), file.begin() + kIdatStart);
  append_chunk(out, "IDAT", payload);
  out.insert(out.end(), file.end() - 12, file.end());  // IEND
  return out;
}

Bytes idat_payload(const Bytes& file) {
  constexpr std::size_t kIdatStart = 8 + 25;
  const std::size_t length =
      (std::size_t{file[kIdatStart]} << 24) |
      (std::size_t{file[kIdatStart + 1]} << 16) |
      (std::size_t{file[kIdatStart + 2]} << 8) |
      std::size_t{file[kIdatStart + 3]};
  const auto begin = file.begin() + kIdatStart + 8;
  return Bytes(begin, begin + static_cast<std::ptrdiff_t>(length));
}

TEST_F(PngCleanup, RejectsZlibChecksumMismatch) {
  const auto src = track(temp_path("seghdc_adler_src.png"));
  write_png(ImageU8(9, 7, 1, 55), src);
  const auto file = read_bytes(src);
  auto payload = idat_payload(file);
  payload.back() ^= 0xFF;  // corrupt the Adler-32 trailer
  expect_png_error(track(temp_path("seghdc_adler.png")),
                   with_idat_payload(file, payload),
                   "zlib checksum mismatch");
}

TEST_F(PngCleanup, RejectsTruncatedDeflateStream) {
  const auto src = track(temp_path("seghdc_cutzlib_src.png"));
  write_png(ImageU8(16, 16, 1, 70), src);
  const auto file = read_bytes(src);
  auto payload = idat_payload(file);
  payload.resize(payload.size() / 2);  // cut the compressed stream
  expect_png_error(track(temp_path("seghdc_cutzlib.png")),
                   with_idat_payload(file, payload),
                   "corrupt deflate stream");
}

TEST_F(PngCleanup, RejectsShortPixelData) {
  // A valid zlib stream that inflates to fewer bytes than the image
  // needs: deflate of an empty payload behind a 4x4 header.
  const auto src = track(temp_path("seghdc_short_src.png"));
  write_png(ImageU8(1, 1, 1, 5), src);  // 1x1: inflates to 2 bytes
  const auto tiny_payload = idat_payload(read_bytes(src));

  auto file = png_with_ihdr(4, 4, 8, 0, 0);
  append_chunk(file, "IDAT", tiny_payload);
  append_chunk(file, "IEND", Bytes{});
  expect_png_error(track(temp_path("seghdc_short.png")), file,
                   "truncated pixel data");
}

TEST(Png, MissingFileHasHonestError) {
  try {
    read_png(temp_path("seghdc_png_does_not_exist.png"));
    FAIL() << "expected read_png to fail on a missing file";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("cannot open"),
              std::string::npos)
        << "actual message: " << error.what();
  }
}

}  // namespace
