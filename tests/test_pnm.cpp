// Tests for PGM/PPM I/O: binary round-trips, ASCII parsing, and error
// handling on malformed input.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/imaging/pnm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::img;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PnmCleanup : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : paths_) {
      std::filesystem::remove(path);
    }
  }
  std::string track(const std::string& path) {
    paths_.push_back(path);
    return path;
  }
  std::vector<std::string> paths_;
};

TEST_F(PnmCleanup, PgmRoundTrip) {
  seghdc::util::Rng rng(1);
  ImageU8 image(17, 9, 1);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_test.pgm"));
  write_pgm(image, path);
  const auto loaded = read_pnm(path);
  EXPECT_EQ(loaded, image);
}

TEST_F(PnmCleanup, PpmRoundTrip) {
  seghdc::util::Rng rng(2);
  ImageU8 image(5, 7, 3);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_test.ppm"));
  write_ppm(image, path);
  const auto loaded = read_pnm(path);
  EXPECT_EQ(loaded, image);
}

TEST_F(PnmCleanup, WritePnmDispatchesOnChannels) {
  const ImageU8 gray(3, 3, 1, 128);
  const ImageU8 rgb(3, 3, 3, 128);
  const auto gray_path = track(temp_path("seghdc_auto.pgm"));
  const auto rgb_path = track(temp_path("seghdc_auto.ppm"));
  write_pnm(gray, gray_path);
  write_pnm(rgb, rgb_path);
  EXPECT_EQ(read_pnm(gray_path).channels(), 1u);
  EXPECT_EQ(read_pnm(rgb_path).channels(), 3u);
}

TEST(Pnm, ChannelMismatchThrows) {
  const ImageU8 rgb(2, 2, 3);
  const ImageU8 gray(2, 2, 1);
  EXPECT_THROW(write_pgm(rgb, temp_path("x.pgm")), std::invalid_argument);
  EXPECT_THROW(write_ppm(gray, temp_path("x.ppm")), std::invalid_argument);
}

TEST_F(PnmCleanup, ReadsAsciiP2WithComments) {
  const auto path = track(temp_path("seghdc_ascii.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n# a comment line\n3 2\n# another\n255\n"
        << "0 128 255\n10 20 30\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.width(), 3u);
  EXPECT_EQ(image.height(), 2u);
  EXPECT_EQ(image.channels(), 1u);
  EXPECT_EQ(image.at(0, 0), 0);
  EXPECT_EQ(image.at(1, 0), 128);
  EXPECT_EQ(image.at(2, 0), 255);
  EXPECT_EQ(image.at(2, 1), 30);
}

TEST_F(PnmCleanup, ReadsAsciiP3) {
  const auto path = track(temp_path("seghdc_ascii.ppm"));
  {
    std::ofstream out(path);
    out << "P3\n1 1\n255\n10 20 30\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.channels(), 3u);
  EXPECT_EQ(image.at(0, 0, 0), 10);
  EXPECT_EQ(image.at(0, 0, 1), 20);
  EXPECT_EQ(image.at(0, 0, 2), 30);
}

TEST_F(PnmCleanup, RejectsBadMagic) {
  const auto path = track(temp_path("seghdc_bad_magic.pnm"));
  {
    std::ofstream out(path);
    out << "P9\n2 2\n255\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsTruncatedBinary) {
  const auto path = track(temp_path("seghdc_truncated.pgm"));
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\n";
    out << "ab";  // 2 of 16 bytes
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsOversizedMaxval) {
  const auto path = track(temp_path("seghdc_maxval.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n1 1\n65535\n1000\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsPixelValueAboveMaxval) {
  const auto path = track(temp_path("seghdc_range.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n1 1\n100\n101\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST(Pnm, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/definitely/not/here.pgm"), std::runtime_error);
}

}  // namespace
