// Tests for PGM/PPM I/O: binary round-trips, ASCII parsing, and error
// handling on malformed input.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/imaging/pnm.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc::img;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PnmCleanup : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : paths_) {
      std::filesystem::remove(path);
    }
  }
  std::string track(const std::string& path) {
    paths_.push_back(path);
    return path;
  }
  std::vector<std::string> paths_;
};

TEST_F(PnmCleanup, PgmRoundTrip) {
  seghdc::util::Rng rng(1);
  ImageU8 image(17, 9, 1);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_test.pgm"));
  write_pgm(image, path);
  const auto loaded = read_pnm(path);
  EXPECT_EQ(loaded, image);
}

TEST_F(PnmCleanup, PpmRoundTrip) {
  seghdc::util::Rng rng(2);
  ImageU8 image(5, 7, 3);
  for (auto& v : image.pixels()) {
    v = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const auto path = track(temp_path("seghdc_test.ppm"));
  write_ppm(image, path);
  const auto loaded = read_pnm(path);
  EXPECT_EQ(loaded, image);
}

TEST_F(PnmCleanup, WritePnmDispatchesOnChannels) {
  const ImageU8 gray(3, 3, 1, 128);
  const ImageU8 rgb(3, 3, 3, 128);
  const auto gray_path = track(temp_path("seghdc_auto.pgm"));
  const auto rgb_path = track(temp_path("seghdc_auto.ppm"));
  write_pnm(gray, gray_path);
  write_pnm(rgb, rgb_path);
  EXPECT_EQ(read_pnm(gray_path).channels(), 1u);
  EXPECT_EQ(read_pnm(rgb_path).channels(), 3u);
}

TEST(Pnm, ChannelMismatchThrows) {
  const ImageU8 rgb(2, 2, 3);
  const ImageU8 gray(2, 2, 1);
  EXPECT_THROW(write_pgm(rgb, temp_path("x.pgm")), std::invalid_argument);
  EXPECT_THROW(write_ppm(gray, temp_path("x.ppm")), std::invalid_argument);
}

TEST_F(PnmCleanup, ReadsAsciiP2WithComments) {
  const auto path = track(temp_path("seghdc_ascii.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n# a comment line\n3 2\n# another\n255\n"
        << "0 128 255\n10 20 30\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.width(), 3u);
  EXPECT_EQ(image.height(), 2u);
  EXPECT_EQ(image.channels(), 1u);
  EXPECT_EQ(image.at(0, 0), 0);
  EXPECT_EQ(image.at(1, 0), 128);
  EXPECT_EQ(image.at(2, 0), 255);
  EXPECT_EQ(image.at(2, 1), 30);
}

TEST_F(PnmCleanup, ReadsAsciiP3) {
  const auto path = track(temp_path("seghdc_ascii.ppm"));
  {
    std::ofstream out(path);
    out << "P3\n1 1\n255\n10 20 30\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.channels(), 3u);
  EXPECT_EQ(image.at(0, 0, 0), 10);
  EXPECT_EQ(image.at(0, 0, 1), 20);
  EXPECT_EQ(image.at(0, 0, 2), 30);
}

TEST_F(PnmCleanup, RejectsBadMagic) {
  const auto path = track(temp_path("seghdc_bad_magic.pnm"));
  {
    std::ofstream out(path);
    out << "P9\n2 2\n255\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsTruncatedBinary) {
  const auto path = track(temp_path("seghdc_truncated.pgm"));
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\n";
    out << "ab";  // 2 of 16 bytes
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsOversizedMaxval) {
  const auto path = track(temp_path("seghdc_maxval.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n1 1\n65535\n1000\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST_F(PnmCleanup, RejectsPixelValueAboveMaxval) {
  const auto path = track(temp_path("seghdc_range.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n1 1\n100\n101\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
}

TEST(Pnm, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/definitely/not/here.pgm"), std::runtime_error);
}

// --- Malformed-input hardening: strict header/pixel token parsing. ---

/// Writes `contents` verbatim and expects read_pnm to throw a
/// runtime_error whose message contains `needle` — the messages are part
/// of the loader's contract (they are what a user debugging a broken
/// file actually sees), so they are pinned, not just the throw.
void expect_read_error(const std::string& path, const std::string& contents,
                       const std::string& needle) {
  {
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }
  try {
    read_pnm(path);
    FAIL() << "expected read_pnm to reject: " << needle;
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual message: " << error.what();
  }
}

TEST_F(PnmCleanup, RejectsWidthWithTrailingGarbage) {
  // std::stoull would silently parse "64x" as 64; the strict parser
  // hard-errors naming the token.
  expect_read_error(track(temp_path("seghdc_badwidth.pgm")),
                    "P5\n64x 4\n255\n", "bad width '64x'");
}

TEST_F(PnmCleanup, RejectsSignedHeaderToken) {
  expect_read_error(track(temp_path("seghdc_negheight.pgm")),
                    "P5\n4 -4\n255\n", "bad height '-4'");
}

TEST_F(PnmCleanup, RejectsOverflowingHeaderToken) {
  expect_read_error(track(temp_path("seghdc_hugewidth.pgm")),
                    "P5\n99999999999999999999999999 4\n255\n",
                    "overflows size_t");
}

TEST_F(PnmCleanup, RejectsNegativeAsciiPixelHonestly) {
  // "-1" used to wrap through stoull into a huge value and die with the
  // misleading "pixel value exceeds maxval"; the honest error names the
  // bad token.
  expect_read_error(track(temp_path("seghdc_negpixel.pgm")),
                    "P2\n2 1\n255\n-1 7\n", "bad pixel value '-1'");
}

TEST_F(PnmCleanup, RejectsNonNumericAsciiPixel) {
  expect_read_error(track(temp_path("seghdc_alphapixel.pgm")),
                    "P2\n2 1\n255\nab 7\n", "bad pixel value 'ab'");
}

TEST_F(PnmCleanup, RejectsOverflowingPixelDimensionProduct) {
  // width * height * channels would wrap size_t on 64-bit only with
  // absurd tokens; both the wrap and the merely-absurd case must fail
  // cleanly (runtime_error, never bad_alloc) before any allocation.
  expect_read_error(track(temp_path("seghdc_wrap.ppm")),
                    "P6\n8589934592 8589934592\n255\n", "overflow size_t");
}

TEST_F(PnmCleanup, RejectsAbsurdHeaderBeforeAllocating) {
  // 65000 * 65000 * 3 bytes = ~12.7 GB: unwrapped but way past the 2 GiB
  // loader limit.
  expect_read_error(track(temp_path("seghdc_absurd.ppm")),
                    "P6\n65000 65000\n255\n", "exceeds the 2 GiB loader limit");
}

// --- Comment handling: supported between header tokens, delimiter
// semantics inside a token, never inside a binary raster. ---

TEST_F(PnmCleanup, CommentDelimitsHeaderToken) {
  // netpbm semantics: "2#note\n55" is the tokens "2" then "55". The old
  // parser resumed the token after the comment and read height 255.
  const auto path = track(temp_path("seghdc_comment_split.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n3 2#trailing note\n255\n1 2 3\n4 5 6\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.width(), 3u);
  EXPECT_EQ(image.height(), 2u);
  EXPECT_EQ(image.at(2, 1), 6);
}

TEST_F(PnmCleanup, CommentBetweenMagicAndWidth) {
  // Where GIMP and ImageMagick actually put their comments.
  const auto path = track(temp_path("seghdc_comment_gimp.pgm"));
  {
    std::ofstream out(path);
    out << "P2\n# Created by GIMP\n# another line\n2 1\n255\n9 8\n";
  }
  const auto image = read_pnm(path);
  EXPECT_EQ(image.width(), 2u);
  EXPECT_EQ(image.at(0, 0), 9);
  EXPECT_EQ(image.at(1, 0), 8);
}

TEST_F(PnmCleanup, BinaryRasterStartingWithHashByteIsPixelData) {
  // The raster begins right after the single whitespace terminating the
  // maxval token (PNM spec), so a first pixel byte of 0x23 ('#') must
  // round-trip as data — comment stripping applies to header tokens
  // only. This pins the documented limitation: a comment between maxval
  // and a binary raster is indistinguishable from pixel data and is NOT
  // supported.
  ImageU8 image(4, 2, 1, 0);
  image(0, 0) = '#';
  image(1, 0) = '\n';
  image(2, 0) = '#';
  const auto path = track(temp_path("seghdc_hash_pixel.pgm"));
  write_pgm(image, path);
  EXPECT_EQ(read_pnm(path), image);
}

}  // namespace
