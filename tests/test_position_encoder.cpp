// Property tests for the position encoder — the paper's central
// construction. The key invariants:
//   * Eq. 4: hamming(p(i,j), p(i+m0,j+n0)) == hamming(p(i,j),
//     p(i+m1,j+n1)) whenever m0+n0 == m1+n1 (Manhattan equality),
//   * the distance is exactly |m|*x_row + |n|*x_col,
//   * Fig. 3(a): the uniform encoding VIOLATES this (diagonal collapse),
//   * Eq. 6: the block variant satisfies the same law over blocks,
//   * Lemma 1: row/column HVs are pseudo-orthogonal.
#include <gtest/gtest.h>

#include "src/core/position_encoder.hpp"
#include "src/hdc/distances.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

PositionEncoder make(PositionEncoding encoding, std::size_t dim,
                     std::size_t rows, std::size_t cols, double alpha = 1.0,
                     std::size_t beta = 1,
                     FlipUnitBasis basis = FlipUnitBasis::kRows,
                     std::uint64_t seed = 11) {
  util::Rng rng(seed);
  return PositionEncoder(
      PositionEncoderConfig{.dim = dim,
                            .rows = rows,
                            .cols = cols,
                            .encoding = encoding,
                            .alpha = alpha,
                            .beta = beta,
                            .flip_unit_basis = basis},
      rng);
}

TEST(PositionEncoder, ManhattanDistanceIsExact) {
  const auto encoder =
      make(PositionEncoding::kManhattan, 4096, 8, 8);
  const std::size_t xr = encoder.row_flip_unit();
  const std::size_t xc = encoder.col_flip_unit();
  ASSERT_GT(xr, 0u);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const auto d = hdc::hamming_distance(encoder.encode(0, 0),
                                           encoder.encode(i, j));
      EXPECT_EQ(d, i * xr + j * xc) << "(" << i << "," << j << ")";
    }
  }
}

// Paper Eq. 4 as a parameterized property: equal Manhattan offsets give
// equal Hamming distances, from any anchor.
struct Eq4Case {
  std::size_t i, j;            // anchor
  std::size_t m0, n0, m1, n1;  // two offsets with m0+n0 == m1+n1
};

class Eq4Test : public ::testing::TestWithParam<Eq4Case> {};

TEST_P(Eq4Test, EqualManhattanOffsetsGiveEqualHamming) {
  const auto param = GetParam();
  ASSERT_EQ(param.m0 + param.n0, param.m1 + param.n1);
  const auto encoder =
      make(PositionEncoding::kDecayManhattan, 8192, 16, 16, 0.8);
  const auto anchor = encoder.encode(param.i, param.j);
  const auto d0 = hdc::hamming_distance(
      anchor, encoder.encode(param.i + param.m0, param.j + param.n0));
  const auto d1 = hdc::hamming_distance(
      anchor, encoder.encode(param.i + param.m1, param.j + param.n1));
  EXPECT_EQ(d0, d1);
  EXPECT_GT(d0, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    OffsetPairs, Eq4Test,
    ::testing::Values(Eq4Case{0, 0, 1, 3, 2, 2},  //
                      Eq4Case{0, 0, 0, 4, 4, 0},  //
                      Eq4Case{2, 3, 1, 1, 2, 0},  //
                      Eq4Case{5, 5, 3, 2, 1, 4},  //
                      Eq4Case{1, 0, 5, 5, 10, 0},
                      Eq4Case{7, 2, 2, 6, 8, 0}));

TEST(PositionEncoder, UniformEncodingViolatesManhattan) {
  // Fig. 3(a): rows and columns flip the same sites, so p(1,1) == p(0,0)
  // -- the diagonal distance collapses to 0 when x_row == x_col.
  const auto encoder = make(PositionEncoding::kUniform, 4096, 8, 8);
  const auto diag = hdc::hamming_distance(encoder.encode(0, 0),
                                          encoder.encode(1, 1));
  EXPECT_EQ(diag, 0u);
  // ...whereas the true Manhattan distance of (1,1) is 2 steps.
  const auto off_axis = hdc::hamming_distance(encoder.encode(0, 0),
                                              encoder.encode(0, 2));
  EXPECT_GT(off_axis, 0u);
}

TEST(PositionEncoder, DecayShrinksFlipUnit) {
  const auto full = make(PositionEncoding::kManhattan, 8192, 8, 8);
  const auto half =
      make(PositionEncoding::kDecayManhattan, 8192, 8, 8, 0.5);
  EXPECT_LT(half.row_flip_unit(), full.row_flip_unit());
  EXPECT_EQ(half.row_flip_unit(), full.row_flip_unit() / 2);
}

TEST(PositionEncoder, BlockVariantSharesHvsWithinBlock) {
  const auto encoder = make(PositionEncoding::kBlockDecayManhattan, 4096,
                            12, 12, 0.5, /*beta=*/3);
  // All positions inside a 3x3 block encode identically (Fig. 3(d)).
  const auto base = encoder.encode(0, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(hdc::hamming_distance(base, encoder.encode(i, j)), 0u);
    }
  }
  // The next block is exactly one flip unit away per axis.
  EXPECT_EQ(hdc::hamming_distance(base, encoder.encode(3, 0)),
            encoder.row_flip_unit());
  EXPECT_EQ(hdc::hamming_distance(base, encoder.encode(0, 3)),
            encoder.col_flip_unit());
  EXPECT_EQ(encoder.distinct_rows(), 4u);
  EXPECT_EQ(encoder.distinct_cols(), 4u);
}

TEST(PositionEncoder, BlockManhattanEquality) {
  // Paper Eq. 6: the Manhattan law holds over block indices.
  const auto encoder = make(PositionEncoding::kBlockDecayManhattan, 8192,
                            20, 20, 0.5, /*beta=*/2);
  const auto anchor = encoder.encode(0, 0);
  // Block offsets (2,1) and (1,2) blocks -> rows 4,2 / cols 2,4.
  const auto d0 = hdc::hamming_distance(anchor, encoder.encode(4, 2));
  const auto d1 = hdc::hamming_distance(anchor, encoder.encode(2, 4));
  EXPECT_EQ(d0, d1);
}

TEST(PositionEncoder, RowAndColumnFlipsLandInDisjointHalves) {
  // Rows flip only the first half, columns only the second (the fix of
  // Fig. 3(b)); verify via XOR support.
  const auto encoder = make(PositionEncoding::kManhattan, 1024, 8, 8);
  const auto row_delta = encoder.row_hv(0) ^ encoder.row_hv(7);
  const auto col_delta = encoder.col_hv(0) ^ encoder.col_hv(7);
  for (std::size_t b = 512; b < 1024; ++b) {
    EXPECT_FALSE(row_delta.get(b)) << "row flip leaked into second half";
  }
  for (std::size_t b = 0; b < 512; ++b) {
    EXPECT_FALSE(col_delta.get(b)) << "col flip leaked into first half";
  }
}

TEST(PositionEncoder, RandomEncodingIsPseudoOrthogonal) {
  const auto encoder = make(PositionEncoding::kRandom, 8192, 6, 6);
  // No distance structure: all distinct positions are ~d/2 apart.
  const auto d01 = hdc::normalized_hamming(encoder.encode(0, 0),
                                           encoder.encode(0, 1));
  const auto d05 = hdc::normalized_hamming(encoder.encode(0, 0),
                                           encoder.encode(5, 5));
  EXPECT_NEAR(d01, 0.5, 0.05);
  EXPECT_NEAR(d05, 0.5, 0.05);
}

TEST(PositionEncoder, Lemma1RowColumnPseudoOrthogonal) {
  const auto encoder = make(PositionEncoding::kManhattan, 10000, 16, 16);
  for (std::size_t i = 0; i < 16; i += 5) {
    for (std::size_t j = 0; j < 16; j += 5) {
      EXPECT_NEAR(
          hdc::normalized_hamming(encoder.row_hv(i), encoder.col_hv(j)),
          0.5, 0.05)
          << "r" << i << " vs c" << j;
    }
  }
}

TEST(PositionEncoder, FlipUnitBasisChangesLadderSpan) {
  const auto rows_basis =
      make(PositionEncoding::kBlockDecayManhattan, 8192, 256, 256, 0.5,
           /*beta=*/32, FlipUnitBasis::kRows);
  const auto blocks_basis =
      make(PositionEncoding::kBlockDecayManhattan, 8192, 256, 256, 0.5,
           /*beta=*/32, FlipUnitBasis::kBlocks);
  // 8 blocks: rows basis gives x = 8192*0.5/512 = 8; blocks basis
  // x = 8192*0.5/16 = 256.
  EXPECT_EQ(rows_basis.row_flip_unit(), 8u);
  EXPECT_EQ(blocks_basis.row_flip_unit(), 256u);
}

TEST(PositionEncoder, FlipUnitClampedToOneBit) {
  // Eq. 5 floors to 0 at small dims; the encoder must keep one bit per
  // step instead of collapsing the ladder.
  const auto encoder = make(PositionEncoding::kBlockDecayManhattan, 512,
                            256, 256, 0.2, /*beta=*/26);
  EXPECT_EQ(encoder.row_flip_unit(), 1u);
  EXPECT_GT(hdc::hamming_distance(encoder.encode(0, 0),
                                  encoder.encode(255, 255)),
            0u);
}

TEST(PositionEncoder, NonSquareGeometry) {
  const auto encoder = make(PositionEncoding::kManhattan, 4096, 4, 16);
  EXPECT_EQ(encoder.distinct_rows(), 4u);
  EXPECT_EQ(encoder.distinct_cols(), 16u);
  EXPECT_GT(encoder.row_flip_unit(), encoder.col_flip_unit());
}

TEST(PositionEncoder, DeterministicGivenSeed) {
  const auto a = make(PositionEncoding::kManhattan, 512, 4, 4, 1.0, 1,
                      FlipUnitBasis::kRows, 99);
  const auto b = make(PositionEncoding::kManhattan, 512, 4, 4, 1.0, 1,
                      FlipUnitBasis::kRows, 99);
  EXPECT_EQ(a.encode(2, 3), b.encode(2, 3));
}

TEST(PositionEncoder, ValidatesConfig) {
  util::Rng rng(1);
  EXPECT_THROW(PositionEncoder(PositionEncoderConfig{.dim = 1, .rows = 4,
                                                     .cols = 4},
                               rng),
               std::invalid_argument);
  EXPECT_THROW(PositionEncoder(PositionEncoderConfig{.dim = 64, .rows = 0,
                                                     .cols = 4},
                               rng),
               std::invalid_argument);
  EXPECT_THROW(
      PositionEncoder(
          PositionEncoderConfig{.dim = 64, .rows = 4, .cols = 4,
                                .alpha = 1.5},
          rng),
      std::invalid_argument);
  EXPECT_THROW(
      PositionEncoder(
          PositionEncoderConfig{.dim = 64, .rows = 4, .cols = 4,
                                .beta = 0},
          rng),
      std::invalid_argument);
  // More blocks than fit the half-region even at one bit per step.
  EXPECT_THROW(
      PositionEncoder(
          PositionEncoderConfig{
              .dim = 64, .rows = 200, .cols = 4,
              .encoding = PositionEncoding::kManhattan},
          rng),
      std::invalid_argument);
}

TEST(PositionEncoder, AccessorsBoundsChecked) {
  const auto encoder = make(PositionEncoding::kManhattan, 512, 4, 6);
  EXPECT_THROW(encoder.row_hv(4), std::invalid_argument);
  EXPECT_THROW(encoder.col_hv(6), std::invalid_argument);
}

}  // namespace
