// Tests for mask post-processing.
#include <gtest/gtest.h>

#include "src/imaging/postprocess.hpp"

namespace {

using namespace seghdc::img;

ImageU8 mask_from(const std::vector<std::string>& rows) {
  ImageU8 mask(rows[0].size(), rows.size(), 1, 0);
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      mask.at(x, y) = rows[y][x] == '#' ? 255 : 0;
    }
  }
  return mask;
}

std::size_t area(const ImageU8& mask) {
  std::size_t count = 0;
  for (const auto v : mask.pixels()) {
    count += v != 0 ? 1 : 0;
  }
  return count;
}

TEST(RemoveSmallComponents, DropsBelowThresholdOnly) {
  const auto mask = mask_from({
      "#....###",
      ".....###",
      "##...###",
      "##......",
  });
  const auto cleaned = remove_small_components(mask, 4);
  EXPECT_EQ(cleaned.at(0, 0), 0);   // area 1 removed
  EXPECT_EQ(cleaned.at(0, 2), 255); // area 4 kept
  EXPECT_EQ(cleaned.at(5, 0), 255); // area 9 kept
  EXPECT_EQ(area(cleaned), 13u);
}

TEST(RemoveSmallComponents, ThresholdZeroKeepsEverything) {
  const auto mask = mask_from({"#.#", "..."});
  EXPECT_EQ(remove_small_components(mask, 0), mask);
}

TEST(FillHoles, FillsEnclosedBackground) {
  const auto mask = mask_from({
      "#####",
      "#...#",
      "#.#.#",
      "#...#",
      "#####",
  });
  const auto filled = fill_holes(mask);
  EXPECT_EQ(area(filled), 25u);  // completely solid
}

TEST(FillHoles, LeavesBorderConnectedBackground) {
  const auto mask = mask_from({
      "###..",
      "#.#..",
      "###..",
  });
  const auto filled = fill_holes(mask);
  EXPECT_EQ(filled.at(1, 1), 255);  // enclosed hole filled
  EXPECT_EQ(filled.at(4, 1), 0);    // open background untouched
}

TEST(FillHoles, NoHolesIsIdentity) {
  const auto mask = mask_from({
      ".....",
      ".###.",
      ".###.",
      ".....",
  });
  EXPECT_EQ(fill_holes(mask), mask);
}

TEST(LargestComponent, KeepsOnlyTheBiggest) {
  const auto mask = mask_from({
      "##..#",
      "##..#",
      ".....",
      "#....",
  });
  const auto kept = largest_component(mask);
  EXPECT_EQ(area(kept), 4u);
  EXPECT_EQ(kept.at(0, 0), 255);
  EXPECT_EQ(kept.at(4, 0), 0);
  EXPECT_EQ(kept.at(0, 3), 0);
}

TEST(LargestComponent, EmptyMaskStaysEmpty) {
  const ImageU8 empty(4, 4, 1, 0);
  EXPECT_EQ(area(largest_component(empty)), 0u);
}

TEST(CleanMask, RemovesSpeckleFillsHolesKeepsBody) {
  const auto mask = mask_from({
      "#..........",
      "...#####...",
      "...#####...",
      "...##.##...",
      "...#####...",
      "...#####...",
      "..........#",
  });
  const auto cleaned = clean_mask(mask, 6);
  EXPECT_EQ(cleaned.at(0, 0), 0);    // speckle
  EXPECT_EQ(cleaned.at(10, 6), 0);   // speckle
  EXPECT_EQ(cleaned.at(5, 3), 255);  // hole filled
  EXPECT_GE(area(cleaned), 9u);      // body survives (eroded by opening)
}

TEST(Postprocess, MultiChannelThrows) {
  const ImageU8 rgb(4, 4, 3);
  EXPECT_THROW(remove_small_components(rgb, 1), std::invalid_argument);
  EXPECT_THROW(fill_holes(rgb), std::invalid_argument);
  EXPECT_THROW(largest_component(rgb), std::invalid_argument);
}

}  // namespace
