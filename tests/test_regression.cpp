// Golden-value regression tests: fixed seeds must keep producing the
// exact same hypervectors, encodings, and label maps across releases.
// These lock in the determinism guarantee the benches rely on — if any
// of these fail after a change, every published number changes too.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/seghdc.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;
using metrics::label_map_hash;

TEST(Regression, RngGoldenSequence) {
  util::Rng rng(42);
  // First three outputs of xoshiro256** seeded via SplitMix64(42).
  const std::uint64_t a = rng();
  const std::uint64_t b = rng();
  const std::uint64_t c = rng();
  util::Rng replay(42);
  EXPECT_EQ(replay(), a);
  EXPECT_EQ(replay(), b);
  EXPECT_EQ(replay(), c);
  // Distinct values (sanity against accidental constant streams).
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Regression, RandomHvGoldenPopcount) {
  util::Rng rng(42);
  const auto hv = hdc::HyperVector::random(4096, rng);
  // Golden value recorded at library version 1.0. A change here means
  // HV generation changed and every experiment is invalidated.
  static constexpr std::size_t kGoldenPopcount = 2048;
  EXPECT_EQ(hv.popcount(), kGoldenPopcount);
}

TEST(Regression, PipelineGoldenLabelHistogram) {
  // A fixed 24x24 two-tone card through a fixed config must yield the
  // exact same cluster sizes forever.
  img::ImageU8 image(24, 24, 1, 30);
  for (std::size_t y = 6; y < 18; ++y) {
    for (std::size_t x = 6; x < 18; ++x) {
      image(x, y) = 200;
    }
  }
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 7;
  const auto result = core::SegHdc(config).segment(image);
  // The square is 12x12 = 144 pixels; background 432.
  std::uint64_t smaller = std::min(result.cluster_pixel_counts[0],
                                   result.cluster_pixel_counts[1]);
  std::uint64_t larger = std::max(result.cluster_pixel_counts[0],
                                  result.cluster_pixel_counts[1]);
  EXPECT_EQ(smaller, 144u);
  EXPECT_EQ(larger, 432u);
}

TEST(Regression, EncodeGoldenUniqueCount) {
  // Dedup on the fixed card: 6x6 position blocks x 2 colors, with only
  // the blocks overlapping the square border holding both colors.
  img::ImageU8 image(24, 24, 1, 30);
  for (std::size_t y = 6; y < 18; ++y) {
    for (std::size_t x = 6; x < 18; ++x) {
      image(x, y) = 200;
    }
  }
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.seed = 7;
  const auto encoded = core::SegHdc(config).encode(image);
  // beta = 4 over 24x24 gives 6x6 = 36 blocks. The square (pixels
  // 6..17) covers blocks 1..4 per axis: 4 pure-foreground blocks
  // (pixels 8..15), 12 mixed border blocks, the rest background-only.
  // Keys: 32 background (all but the pure-fg blocks) + 16 foreground
  // (pure + mixed) = 48 unique (block, color) pairs.
  EXPECT_EQ(encoded.unique_hvs.size(), 48u);
}

TEST(Regression, SegmentGoldenLabelHashOnTwoToneCard) {
  // Guard for kernel rewrites: the full pipeline on the synthetic
  // two-tone test card at a fixed seed must keep producing the exact
  // same label map (hash) and a perfect foreground match (IoU floor).
  // If the hash changes, the numeric behaviour of encode/cluster
  // changed — rerecord only after confirming the change is intended.
  const std::size_t size = 64;
  img::ImageU8 image(size, size, 1, 20);
  img::ImageU8 mask(size, size, 1, 0);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = 220;
      mask(x, y) = 255;
    }
  }
  core::SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.clusters = 2;
  config.iterations = 5;
  config.seed = 42;
  const auto result = core::SegHdc(config).segment(image);
  const auto iou =
      metrics::best_foreground_iou(result.labels, 2, mask).iou;
  EXPECT_GE(iou, 0.99);
  static constexpr std::uint64_t kGoldenLabelHash = 18083703337168858917ULL;
  EXPECT_EQ(label_map_hash(result.labels), kGoldenLabelHash)
      << "label-map hash drifted; pipeline output changed";
}

TEST(Regression, SameSeedSameLabelsAcrossProcessRuns) {
  // Full pipeline determinism at a larger size (exercises the thread
  // pool: parallel assignment must not change results).
  img::ImageU8 image(40, 40, 3, 10);
  for (std::size_t y = 0; y < 40; ++y) {
    for (std::size_t x = 0; x < 40; ++x) {
      if ((x / 5 + y / 5) % 2 == 0) {
        image(x, y, 0) = 180;
        image(x, y, 1) = 190;
        image(x, y, 2) = 200;
      }
    }
  }
  core::SegHdcConfig config;
  config.dim = 1024;
  config.beta = 5;
  config.iterations = 6;
  const auto first = core::SegHdc(config).segment(image);
  for (int run = 0; run < 3; ++run) {
    const auto again = core::SegHdc(config).segment(image);
    ASSERT_EQ(again.labels, first.labels) << "run " << run;
  }
}

}  // namespace
