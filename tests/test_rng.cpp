// Tests for the deterministic xoshiro256** generator: every stochastic
// component of the library sits on top of this, so reproducibility of
// every table and figure reduces to these properties.
#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.hpp"

namespace {

using seghdc::util::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedStillProducesEntropy) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng());
  }
  EXPECT_EQ(values.size(), 100u);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(9);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.next_below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInSinglePoint) {
  Rng rng(12);
  EXPECT_EQ(rng.next_in(5, 5), 5);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng rng(13);
  EXPECT_THROW(rng.next_in(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(16);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBoolRoughlyFair) {
  Rng rng(18);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    heads += rng.next_bool() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.03);
}

TEST(Rng, BitsAreBalanced) {
  // Each of the 64 bit positions should be ~50% ones.
  Rng rng(19);
  std::array<int, 64> ones{};
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng();
    for (int b = 0; b < 64; ++b) {
      ones[static_cast<std::size_t>(b)] +=
          static_cast<int>((v >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<std::size_t>(b)]) / n,
                0.5, 0.05)
        << "bit " << b;
  }
}

}  // namespace
