// End-to-end tests for the SegHDC pipeline.
#include <gtest/gtest.h>

#include "src/core/seghdc.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

/// A crisp two-tone test card: bright square on dark background.
struct TestCard {
  img::ImageU8 image;
  img::ImageU8 mask;
};

TestCard make_card(std::size_t size = 64, std::size_t channels = 1) {
  TestCard card;
  card.image = img::ImageU8(size, size, channels, 20);
  card.mask = img::ImageU8(size, size, 1, 0);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      for (std::size_t c = 0; c < channels; ++c) {
        card.image(x, y, c) = 220;
      }
      card.mask(x, y) = 255;
    }
  }
  return card;
}

SegHdcConfig small_config() {
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.clusters = 2;
  config.iterations = 5;
  return config;
}

TEST(SegHdc, PerfectlySeparatesTwoToneImage) {
  const auto card = make_card();
  const SegHdc seghdc(small_config());
  const auto result = seghdc.segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_DOUBLE_EQ(matched.iou, 1.0);
}

TEST(SegHdc, WorksOnRgbImages) {
  const auto card = make_card(64, 3);
  const SegHdc seghdc(small_config());
  const auto result = seghdc.segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_GT(matched.iou, 0.98);
}

TEST(SegHdc, DeterministicAcrossRuns) {
  const auto card = make_card();
  const SegHdc seghdc(small_config());
  const auto a = seghdc.segment(card.image);
  const auto b = seghdc.segment(card.image);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SegHdc, SeedChangesEncodingNotQuality) {
  const auto card = make_card();
  auto config_a = small_config();
  auto config_b = small_config();
  config_b.seed = 777;
  const auto result_a = SegHdc(config_a).segment(card.image);
  const auto result_b = SegHdc(config_b).segment(card.image);
  const auto iou_a =
      metrics::best_foreground_iou(result_a.labels, 2, card.mask).iou;
  const auto iou_b =
      metrics::best_foreground_iou(result_b.labels, 2, card.mask).iou;
  EXPECT_NEAR(iou_a, iou_b, 0.02);
}

TEST(SegHdc, DedupMatchesNoDedupLabels) {
  // Deduplication is an exact optimisation: identical label maps.
  const auto card = make_card(32);
  auto with_dedup = small_config();
  auto without_dedup = small_config();
  without_dedup.deduplicate = false;
  const auto a = SegHdc(with_dedup).segment(card.image);
  const auto b = SegHdc(without_dedup).segment(card.image);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_LT(a.unique_points, b.unique_points);
  EXPECT_EQ(b.unique_points, card.image.pixel_count());
}

TEST(SegHdc, EncodeMappingIsConsistent) {
  const auto card = make_card(32);
  const SegHdc seghdc(small_config());
  const auto encoded = seghdc.encode(card.image);
  ASSERT_EQ(encoded.pixel_to_unique.size(), card.image.pixel_count());
  ASSERT_EQ(encoded.unique_hvs.size(), encoded.weights.size());
  ASSERT_EQ(encoded.unique_hvs.size(), encoded.intensities.size());
  // Weights sum to the pixel count.
  std::uint64_t total = 0;
  for (const auto w : encoded.weights) {
    total += w;
  }
  EXPECT_EQ(total, card.image.pixel_count());
  // Every pixel maps to a valid unique index.
  for (const auto u : encoded.pixel_to_unique) {
    EXPECT_LT(u, encoded.unique_hvs.size());
  }
  // All unique HVs share the configured dimensionality (one SoA block).
  EXPECT_EQ(encoded.unique_hvs.dim(), small_config().dim);
  EXPECT_EQ(encoded.unique_hvs.words_per_hv(),
            (small_config().dim + 63) / 64);
}

TEST(SegHdc, PixelsInSameBlockWithSameColorShareUniquePoint) {
  const auto card = make_card(32);
  const SegHdc seghdc(small_config());  // beta = 8
  const auto encoded = seghdc.encode(card.image);
  // (0,0) and (1,1) are in the same 8x8 block and both background.
  EXPECT_EQ(encoded.pixel_to_unique[0],
            encoded.pixel_to_unique[1 * 32 + 1]);
  // (0,0) and (16,16) share the color but not the block.
  EXPECT_NE(encoded.pixel_to_unique[0],
            encoded.pixel_to_unique[16 * 32 + 16]);
}

TEST(SegHdc, QuantizationCollapsesNearbyColors) {
  auto card = make_card(32);
  // Add one-off color jitter to the background.
  card.image(1, 1) = 21;
  card.image(2, 2) = 22;
  auto exact = small_config();
  auto quantized = small_config();
  quantized.color_quantization_shift = 3;
  const auto exact_encoded = SegHdc(exact).encode(card.image);
  const auto quant_encoded = SegHdc(quantized).encode(card.image);
  EXPECT_GT(exact_encoded.unique_hvs.size(),
            quant_encoded.unique_hvs.size());
}

TEST(SegHdc, ClusterPixelCountsSumToImage) {
  const auto card = make_card();
  const SegHdc seghdc(small_config());
  const auto result = seghdc.segment(card.image);
  std::uint64_t total = 0;
  for (const auto count : result.cluster_pixel_counts) {
    total += count;
  }
  EXPECT_EQ(total, card.image.pixel_count());
  EXPECT_EQ(result.cluster_pixel_counts.size(), 2u);
}

TEST(SegHdc, ReportsTimingsAndOps) {
  const auto card = make_card();
  const SegHdc seghdc(small_config());
  const auto result = seghdc.segment(card.image);
  EXPECT_GT(result.timings.total_seconds, 0.0);
  EXPECT_GE(result.timings.total_seconds,
            result.timings.cluster_seconds);
  EXPECT_GT(result.ops.dot_adds, 0u);
  EXPECT_GT(result.ops.bind_xor_bits, 0u);
  // Paper-equivalent counts follow the analytic per-pixel formula.
  const auto expected = analytic_seghdc_ops(card.image.pixel_count(),
                                            small_config().dim, 2, 5);
  EXPECT_EQ(result.paper_equivalent_ops.dot_adds, expected.dot_adds);
  // Dedup makes actual work strictly smaller than paper-equivalent.
  EXPECT_LT(result.ops.dot_adds, result.paper_equivalent_ops.dot_adds);
}

TEST(SegHdc, ThreeClusterImage) {
  // Three intensity bands -> three clusters recovered.
  img::ImageU8 image(48, 48, 1, 0);
  for (std::size_t y = 0; y < 48; ++y) {
    for (std::size_t x = 0; x < 48; ++x) {
      image(x, y) = x < 16 ? 15 : x < 32 ? 120 : 240;
    }
  }
  auto config = small_config();
  config.clusters = 3;
  const auto result = SegHdc(config).segment(image);
  // Each band should be internally uniform.
  EXPECT_EQ(result.labels.at(2, 20), result.labels.at(8, 40));
  EXPECT_EQ(result.labels.at(20, 20), result.labels.at(25, 4));
  EXPECT_EQ(result.labels.at(40, 20), result.labels.at(45, 45));
  // And the three bands pairwise distinct.
  EXPECT_NE(result.labels.at(2, 20), result.labels.at(20, 20));
  EXPECT_NE(result.labels.at(20, 20), result.labels.at(40, 20));
}

TEST(SegHdc, RposVariantDegradesSegmentation) {
  // Table I's RPos column: random position codebooks destroy locality
  // and drag IoU far below the structured encoder.
  const auto card = make_card();
  const auto structured = SegHdc(small_config()).segment(card.image);
  const auto rpos =
      SegHdc(small_config().rpos_variant()).segment(card.image);
  const auto structured_iou =
      metrics::best_foreground_iou(structured.labels, 2, card.mask).iou;
  const auto rpos_iou =
      metrics::best_foreground_iou(rpos.labels, 2, card.mask).iou;
  EXPECT_GT(structured_iou, rpos_iou + 0.2);
}

TEST(SegHdc, ConfigValidation) {
  SegHdcConfig config;
  config.dim = 4;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
  config = SegHdcConfig{};
  config.alpha = 0.0;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
  config = SegHdcConfig{};
  config.clusters = 1;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
  config = SegHdcConfig{};
  config.iterations = 0;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
  config = SegHdcConfig{};
  config.gamma = 0;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
  config = SegHdcConfig{};
  config.color_quantization_shift = 8;
  EXPECT_THROW(SegHdc{config}, std::invalid_argument);
}

TEST(SegHdc, RejectsUnsupportedImages) {
  const SegHdc seghdc(small_config());
  const img::ImageU8 two_channel(8, 8, 2, 0);
  EXPECT_THROW(seghdc.segment(two_channel), std::invalid_argument);
}

TEST(SegHdc, VariantFactoriesOnlyChangeEncoding) {
  const SegHdcConfig base = small_config();
  const auto rpos = base.rpos_variant();
  EXPECT_EQ(rpos.position_encoding, PositionEncoding::kRandom);
  EXPECT_EQ(rpos.color_encoding, base.color_encoding);
  EXPECT_EQ(rpos.dim, base.dim);
  const auto rcolor = base.rcolor_variant();
  EXPECT_EQ(rcolor.color_encoding, ColorEncoding::kRandom);
  EXPECT_EQ(rcolor.position_encoding, base.position_encoding);
}

}  // namespace
