// Parameterized property sweeps over the SegHDC pipeline: the
// segmentation invariants must hold across dimensions, block sizes,
// cluster distances, and channel counts — not just at the paper's
// default configuration.
#include <gtest/gtest.h>

#include "src/core/seghdc.hpp"
#include "src/metrics/segmentation_metrics.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::core;

struct Card {
  img::ImageU8 image;
  img::ImageU8 mask;
};

Card make_card(std::size_t size, std::size_t channels) {
  Card card;
  card.image = img::ImageU8(size, size, channels, 24);
  card.mask = img::ImageU8(size, size, 1, 0);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      for (std::size_t c = 0; c < channels; ++c) {
        card.image(x, y, c) = 216;
      }
      card.mask(x, y) = 255;
    }
  }
  return card;
}

// --- Sweep 1: dimension x block size, grayscale and RGB. ---
class DimBetaSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(DimBetaSweep, TwoToneCardSegmentsPerfectly) {
  const auto [dim, beta, channels] = GetParam();
  const auto card = make_card(64, channels);
  SegHdcConfig config;
  config.dim = dim;
  config.beta = beta;
  config.iterations = 6;
  const auto result = SegHdc(config).segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_GT(matched.iou, 0.97)
      << "dim=" << dim << " beta=" << beta << " channels=" << channels;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DimBetaSweep,
    ::testing::Combine(::testing::Values(512, 1024, 4096),
                       ::testing::Values(2, 8, 16),
                       ::testing::Values(1, 3)));

// --- Sweep 2: every position-encoding variant that preserves locality
// must solve the easy card; the ablation variants are allowed to fail
// but must not crash. ---
class EncodingSweep
    : public ::testing::TestWithParam<PositionEncoding> {};

TEST_P(EncodingSweep, RunsAndProducesValidLabels) {
  const auto card = make_card(48, 1);
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.iterations = 5;
  config.position_encoding = GetParam();
  const auto result = SegHdc(config).segment(card.image);
  for (const auto label : result.labels.pixels()) {
    EXPECT_LT(label, 2u);
  }
  // Quality is only guaranteed for the decayed variants: kManhattan is
  // by definition the alpha = 1 encoding (paper Fig. 3(b)), where
  // position distance rivals color distance and clustering can split
  // spatially — the motivation for the decay ratio in Fig. 3(c).
  if (GetParam() == PositionEncoding::kDecayManhattan ||
      GetParam() == PositionEncoding::kBlockDecayManhattan) {
    const auto matched =
        metrics::best_foreground_iou(result.labels, 2, card.mask);
    EXPECT_GT(matched.iou, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, EncodingSweep,
    ::testing::Values(PositionEncoding::kUniform,
                      PositionEncoding::kManhattan,
                      PositionEncoding::kDecayManhattan,
                      PositionEncoding::kBlockDecayManhattan,
                      PositionEncoding::kRandom));

// --- Sweep 3: both clustering distances solve the card. ---
class DistanceSweep : public ::testing::TestWithParam<ClusterDistance> {};

TEST_P(DistanceSweep, TwoToneCardSegments) {
  const auto card = make_card(48, 1);
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.iterations = 6;
  config.cluster_distance = GetParam();
  const auto result = SegHdc(config).segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_GT(matched.iou, 0.97);
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceSweep,
                         ::testing::Values(ClusterDistance::kCosine,
                                           ClusterDistance::kHamming));

// --- Sweep 4: quantisation shifts preserve quality on clean images. ---
class QuantizationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizationSweep, QualityHolds) {
  const auto card = make_card(48, 3);
  SegHdcConfig config;
  config.dim = 1024;
  config.beta = 8;
  config.iterations = 5;
  config.color_quantization_shift = GetParam();
  const auto result = SegHdc(config).segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_GT(matched.iou, 0.97) << "shift " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Shifts, QuantizationSweep,
                         ::testing::Values(0, 1, 2, 3, 4));

// --- Convergence extension. ---
TEST(Convergence, EarlyStopMatchesFullBudget) {
  const auto card = make_card(48, 1);
  SegHdcConfig fixed;
  fixed.dim = 1024;
  fixed.beta = 8;
  fixed.iterations = 10;
  SegHdcConfig early = fixed;
  early.stop_on_convergence = true;

  const auto full = SegHdc(fixed).segment(card.image);
  const auto stopped = SegHdc(early).segment(card.image);
  EXPECT_EQ(full.labels, stopped.labels);
  EXPECT_LT(stopped.iterations_run, full.iterations_run);
  EXPECT_EQ(full.iterations_run, 10u);
}

TEST(Convergence, ReportsIterationsRun) {
  const auto card = make_card(32, 1);
  SegHdcConfig config;
  config.dim = 512;
  config.beta = 8;
  config.iterations = 50;
  config.stop_on_convergence = true;
  const auto result = SegHdc(config).segment(card.image);
  EXPECT_LT(result.iterations_run, 50u);
  EXPECT_GE(result.iterations_run, 2u);
}

// --- Gamma sweep: raising gamma must not break the easy case and must
// monotonically increase the share of color in the total distance. ---
class GammaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GammaSweep, CardStillSegments) {
  const auto card = make_card(48, 3);
  SegHdcConfig config;
  config.dim = 1536;
  config.beta = 8;
  config.iterations = 5;
  config.gamma = GetParam();
  const auto result = SegHdc(config).segment(card.image);
  const auto matched =
      metrics::best_foreground_iou(result.labels, 2, card.mask);
  EXPECT_GT(matched.iou, 0.97) << "gamma " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep, ::testing::Values(1, 2, 4));

}  // namespace
