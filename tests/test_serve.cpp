// Tier-1 suite for the async pipelined serving layer (src/serve/):
// SegHdcServer must deliver results bit-identical to the synchronous
// session path at every queue capacity, worker count, pool size, and
// backpressure policy — scheduling may reorder completions, never change
// content. Pins the PR-2 golden batch hash 13206585988845182882 through
// the server, the shutdown drain/cancel semantics, the reject policy,
// and the ServerStats percentile math against known sequences.
//
// The SEGHDC_TEST_QUEUE_CAP environment variable (default 0 =
// unbounded) forces the submit-queue capacity of every test that does
// not pin one itself, so a CI job can run the whole suite under
// deliberately tiny queues (forced backpressure) — outputs must not
// move.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/session.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/server.hpp"
#include "src/serve/stats.hpp"
#include "src/util/bounded_queue.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

std::size_t test_queue_capacity() {
  const char* env = std::getenv("SEGHDC_TEST_QUEUE_CAP");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  // Hard error on junk, like every other forced knob (SEGHDC_TILE_ROWS,
  // SEGHDC_KERNEL_BACKEND): a typo'd CI env that silently meant
  // "unbounded" would turn the forced-backpressure job into a no-op.
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (*env < '0' || *env > '9' || *end != '\0') {
    throw std::invalid_argument(
        std::string("SEGHDC_TEST_QUEUE_CAP must be a non-negative "
                    "integer, got '") +
        env + "'");
  }
  return static_cast<std::size_t>(value);
}

img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

/// The exact batch + config of SegHdcSession.SegmentManyGoldenLabelHash:
/// the server must reproduce its combined hash bit for bit.
std::vector<img::ImageU8> golden_batch() {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));
  return images;
}

core::SegHdcConfig golden_config() {
  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;

std::uint64_t results_hash(
    const std::vector<core::SegmentationResult>& results) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

/// Submits `images` in order and collects the results back into submit
/// order through the futures — completion order is the pipeline's
/// business, content is pinned per index.
std::vector<core::SegmentationResult> serve_batch(
    serve::SegHdcServer& server, const std::vector<img::ImageU8>& images) {
  std::vector<std::future<core::SegmentationResult>> futures;
  futures.reserve(images.size());
  for (const auto& image : images) {
    futures.push_back(server.submit(image));
  }
  std::vector<core::SegmentationResult> results;
  results.reserve(images.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

void expect_results_identical(const core::SegmentationResult& a,
                              const core::SegmentationResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.unique_points, b.unique_points);
  EXPECT_EQ(a.cluster_pixel_counts, b.cluster_pixel_counts);
}

// --- BoundedQueue: the primitive under the server. ---

TEST(BoundedQueue, FifoAndCapacity) {
  util::BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  int a = 1, b = 2, c = 3;
  EXPECT_EQ(queue.try_push(a), util::QueuePush::kOk);
  EXPECT_EQ(queue.try_push(b), util::QueuePush::kOk);
  EXPECT_EQ(queue.try_push(c), util::QueuePush::kFull);
  EXPECT_EQ(c, 3);  // kFull must not consume the value
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.try_push(c), util::QueuePush::kOk);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 3);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  util::BoundedQueue<int> queue;  // unbounded
  int v = 7;
  ASSERT_TRUE(queue.push(v));
  queue.close();
  int w = 8;
  EXPECT_FALSE(queue.push(w));
  EXPECT_EQ(queue.try_push(w), util::QueuePush::kClosed);
  EXPECT_EQ(queue.pop().value(), 7);  // drain continues after close
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // stays ended
}

TEST(BoundedQueue, CloseAndDrainReturnsQueuedValuesInOrder) {
  util::BoundedQueue<int> queue;
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(queue.push(v));
  }
  const std::vector<int> drained = queue.close_and_drain();
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  util::BoundedQueue<int> queue(3);  // tiny: forces blocking on both sides
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        ASSERT_TRUE(queue.push(value));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &sum, &popped] {
      while (auto value = queue.pop()) {
        sum.fetch_add(*value);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  queue.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

// --- Percentile math: the ServerStats satellite. ---

TEST(LatencyRecorder, NearestRankPercentilesOnKnownSequence) {
  // 1..100 recorded in shuffled-ish order: nearest-rank percentiles are
  // exactly the textbook values.
  serve::LatencyRecorder recorder;
  for (int i = 100; i >= 1; --i) {
    recorder.record(static_cast<double>(i));
  }
  const auto p = recorder.snapshot();
  EXPECT_EQ(p.count, 100u);
  EXPECT_DOUBLE_EQ(p.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(p.max_seconds, 100.0);
  EXPECT_DOUBLE_EQ(p.mean_seconds, 50.5);
  EXPECT_DOUBLE_EQ(p.p50_seconds, 50.0);
  EXPECT_DOUBLE_EQ(p.p95_seconds, 95.0);
  EXPECT_DOUBLE_EQ(p.p99_seconds, 99.0);
}

TEST(LatencyRecorder, SmallSampleCountsRoundUpToARealSample) {
  serve::LatencyRecorder recorder;
  recorder.record(10.0);
  recorder.record(20.0);
  recorder.record(30.0);
  const auto p = recorder.snapshot();
  // n=3: p50 -> ceil(1.5) = 2nd smallest; p95/p99 -> ceil(2.85/2.97) =
  // the maximum. Every percentile is an actual sample, never an
  // interpolation.
  EXPECT_DOUBLE_EQ(p.p50_seconds, 20.0);
  EXPECT_DOUBLE_EQ(p.p95_seconds, 30.0);
  EXPECT_DOUBLE_EQ(p.p99_seconds, 30.0);
}

TEST(LatencyRecorder, WindowSlidesButTotalsCoverEverything) {
  serve::LatencyRecorder recorder(4);  // window of 4
  for (int i = 1; i <= 8; ++i) {
    recorder.record(static_cast<double>(i));
  }
  const auto p = recorder.snapshot();
  EXPECT_EQ(p.count, 8u);                  // all samples counted
  // Regression: `count` is lifetime, but min/max/percentiles only cover
  // the sliding window — `window_count` says how many samples that is,
  // so a display can no longer claim "max over 8 requests" when the
  // window held 4.
  EXPECT_EQ(p.window_count, 4u);
  EXPECT_DOUBLE_EQ(p.mean_seconds, 4.5);   // mean over all 8
  EXPECT_DOUBLE_EQ(p.min_seconds, 5.0);    // window holds {5,6,7,8}
  EXPECT_DOUBLE_EQ(p.max_seconds, 8.0);
  EXPECT_DOUBLE_EQ(p.p50_seconds, 6.0);    // ceil(0.5*4)=2nd of window
}

TEST(LatencyRecorder, WindowCountMatchesCountBeforeTheWindowWraps) {
  serve::LatencyRecorder recorder(4);
  recorder.record(1.0);
  recorder.record(2.0);
  const auto p = recorder.snapshot();
  EXPECT_EQ(p.count, 2u);
  EXPECT_EQ(p.window_count, 2u);
}

TEST(LatencyRecorder, EmptySnapshotIsAllZero) {
  const serve::LatencyRecorder recorder;
  const auto p = recorder.snapshot();
  EXPECT_EQ(p.count, 0u);
  EXPECT_DOUBLE_EQ(p.p99_seconds, 0.0);
}

TEST(PercentileNearestRank, EdgeRanks) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(serve::percentile_nearest_rank(one, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(serve::percentile_nearest_rank(one, 99.0), 42.0);
  const std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(serve::percentile_nearest_rank(four, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::percentile_nearest_rank(four, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(serve::percentile_nearest_rank(four, 0.1), 1.0);
}

// --- The golden gate: the acceptance-criteria sweep. ---

TEST(SegHdcServer, GoldenBatchHashAtEveryQueueCapacityAndPoolSize) {
  const auto images = golden_batch();
  const auto config = golden_config();
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{4},
                                     std::size_t{0} /* unbounded */}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const auto policy : {serve::BackpressurePolicy::kBlock,
                                serve::BackpressurePolicy::kReject}) {
        SCOPED_TRACE("capacity " + std::to_string(capacity) + " pool " +
                     std::to_string(threads) + " policy " +
                     (policy == serve::BackpressurePolicy::kBlock
                          ? "block"
                          : "reject"));
        util::ThreadPool pool(threads);
        serve::ServerOptions options;
        options.queue_capacity = capacity;
        options.backpressure = policy;
        options.encode_workers = threads >= 2 ? 2 : 1;
        options.cluster_workers = threads >= 2 ? 2 : 1;
        options.pool = &pool;
        serve::SegHdcServer server(config, options);
        std::vector<core::SegmentationResult> results;
        if (policy == serve::BackpressurePolicy::kReject) {
          // Reject policy: resubmit on rejection until accepted — every
          // image must eventually flow through and hash identically.
          std::vector<std::future<core::SegmentationResult>> futures;
          for (const auto& image : images) {
            for (;;) {
              try {
                futures.push_back(server.submit(image));
                break;
              } catch (const serve::RejectedError&) {
                std::this_thread::yield();
              }
            }
          }
          for (auto& future : futures) {
            results.push_back(future.get());
          }
        } else {
          results = serve_batch(server, images);
        }
        EXPECT_EQ(results_hash(results), kGoldenBatchHash)
            << "server label hash diverged from the segment_many golden";
      }
    }
  }
}

// --- Ordering independence: completions may land in any order, the
// delivered (index, result) pairs must match the synchronous path. ---

TEST(SegHdcServer, ResultsMatchSynchronousPathPerIndex) {
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 25, 205));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(32, 40, 180));
  images.push_back(images[0]);
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 30, 220));

  auto config = golden_config();
  config.compute_margins = true;  // margins must survive the pipeline too

  std::vector<core::SegmentationResult> expected;
  {
    const core::SegHdcSession session(config);
    for (const auto& image : images) {
      expected.push_back(session.segment(image));
    }
  }

  util::ThreadPool pool(4);
  serve::ServerOptions options;
  options.queue_capacity = test_queue_capacity();
  options.encode_workers = 2;
  options.cluster_workers = 2;
  options.pool = &pool;
  serve::SegHdcServer server(config, options);
  const auto results = serve_batch(server, images);
  ASSERT_EQ(results.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    SCOPED_TRACE("image " + std::to_string(i));
    expect_results_identical(expected[i], results[i]);
  }
  // Three distinct geometries in the batch -> exactly three encoder
  // states, just like a session.
  EXPECT_EQ(server.session().encoder_states_built(), 3u);
}

TEST(SegHdcServer, SinkOverloadDeliversEveryResultExactlyOnce) {
  const auto images = golden_batch();
  const auto config = golden_config();
  const core::SegHdcSession reference(config);

  util::ThreadPool pool(2);
  serve::ServerOptions options;
  options.queue_capacity = test_queue_capacity();
  options.encode_workers = 2;
  options.cluster_workers = 2;
  options.pool = &pool;
  std::vector<core::SegmentationResult> delivered(images.size());
  std::vector<std::atomic<int>> calls(images.size());
  {
    serve::SegHdcServer server(config, options);
    for (std::size_t i = 0; i < images.size(); ++i) {
      server.submit(images[i],
                    [&delivered, &calls, i](core::SegmentationResult&& r) {
                      delivered[i] = std::move(r);
                      calls[i].fetch_add(1);
                    });
    }
    server.shutdown(serve::ShutdownMode::kDrain);
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    SCOPED_TRACE("image " + std::to_string(i));
    EXPECT_EQ(calls[i].load(), 1);
    expect_results_identical(reference.segment(images[i]), delivered[i]);
  }
}

// --- Determinism under forced contention: a tiny queue, more workers
// than queue slots, repeated runs — the hash must never move. ---

TEST(SegHdcServer, DeterministicUnderForcedContention) {
  std::vector<img::ImageU8> images;
  for (int round = 0; round < 4; ++round) {
    for (auto& image : golden_batch()) {
      images.push_back(std::move(image));
    }
  }
  const auto config = golden_config();

  std::uint64_t expected_hash = 0;
  {
    const core::SegHdcSession session(config);
    std::vector<core::SegmentationResult> sequential;
    for (const auto& image : images) {
      sequential.push_back(session.segment(image));
    }
    expected_hash = results_hash(sequential);
  }

  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    util::ThreadPool pool(4);
    serve::ServerOptions options;
    options.queue_capacity = 1;  // every submit contends
    options.encode_workers = 3;
    options.cluster_workers = 2;
    options.pool = &pool;
    serve::SegHdcServer server(config, options);
    const auto results = serve_batch(server, images);
    EXPECT_EQ(results_hash(results), expected_hash);
  }
}

// --- Shutdown semantics. ---

TEST(SegHdcServer, ShutdownDrainCompletesEverythingAccepted) {
  const auto images = golden_batch();
  const auto config = golden_config();
  util::ThreadPool pool(2);
  serve::ServerOptions options;
  options.queue_capacity = test_queue_capacity();
  options.pool = &pool;
  serve::SegHdcServer server(config, options);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const auto& image : images) {
      futures.push_back(server.submit(image));
    }
  }
  server.shutdown(serve::ShutdownMode::kDrain);
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());  // every accepted request completed
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, futures.size());
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  // Submit after shutdown is a hard error, not a silent drop.
  EXPECT_THROW(server.submit(images[0]), serve::ShutdownError);
  // Idempotent: a second shutdown (other mode) is a no-op.
  server.shutdown(serve::ShutdownMode::kCancel);
}

TEST(SegHdcServer, ShutdownCancelFailsQueuedAndFinishesInFlight) {
  const auto config = golden_config();
  const core::SegHdcSession reference(config);
  // One slow image at the head keeps the single encode worker busy while
  // the rest pile up in the queue, so an immediate cancel finds them
  // still queued. The assertions stay valid under any scheduling: each
  // future either completes bit-identically or fails with
  // CancelledError, and the counters add up.
  std::vector<img::ImageU8> images;
  images.push_back(make_rgb_card(96, 96));
  for (int i = 0; i < 7; ++i) {
    images.push_back(make_gray_card(24, 30, 220));
  }

  util::ThreadPool pool(1);
  serve::ServerOptions options;
  options.pool = &pool;  // unbounded queue, 1+1 workers
  serve::SegHdcServer server(config, options);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (const auto& image : images) {
    futures.push_back(server.submit(image));
  }
  server.shutdown(serve::ShutdownMode::kCancel);

  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const auto result = futures[i].get();
      ++completed;
      expect_results_identical(reference.segment(images[i]), result);
    } catch (const serve::CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, futures.size());
  EXPECT_GE(cancelled, 1u) << "cancel found nothing queued — if this is "
                              "flaky the head image needs to be bigger";
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.submitted, futures.size());
}

TEST(SegHdcServer, ShutdownCancelAfterFirstCompletionKeepsThatResult) {
  const auto config = golden_config();
  const auto images = golden_batch();
  util::ThreadPool pool(1);
  serve::ServerOptions options;
  options.pool = &pool;
  serve::SegHdcServer server(config, options);
  auto first = server.submit(images[0]);
  const auto first_result = first.get();  // guaranteed completed
  server.shutdown(serve::ShutdownMode::kCancel);
  const core::SegHdcSession reference(config);
  expect_results_identical(reference.segment(images[0]), first_result);
  EXPECT_GE(server.stats().completed, 1u);
}

// --- Backpressure policies. ---

TEST(SegHdcServer, RejectPolicyFailsFastAndAcceptedWorkStaysExact) {
  auto config = golden_config();
  config.dim = 2048;  // slow the pipeline so the queue actually fills
  const core::SegHdcSession reference(config);

  util::ThreadPool pool(1);
  serve::ServerOptions options;
  options.queue_capacity = 1;
  options.backpressure = serve::BackpressurePolicy::kReject;
  options.pool = &pool;
  serve::SegHdcServer server(config, options);

  // A large head image occupies the encode worker for many milliseconds;
  // the burst behind it can't all fit a 1-slot queue.
  std::vector<img::ImageU8> images;
  images.push_back(make_rgb_card(96, 96));
  for (int i = 0; i < 7; ++i) {
    images.push_back(make_gray_card(24, 30, 220));
  }
  std::vector<std::size_t> accepted;
  std::vector<std::future<core::SegmentationResult>> futures;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    try {
      futures.push_back(server.submit(images[i]));
      accepted.push_back(i);
    } catch (const serve::RejectedError&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u) << "burst never filled the 1-slot queue — if "
                             "this is flaky the head image needs to grow";
  for (std::size_t f = 0; f < futures.size(); ++f) {
    expect_results_identical(reference.segment(images[accepted[f]]),
                             futures[f].get());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.completed, accepted.size());
}

TEST(SegHdcServer, BlockPolicyAcceptsEverythingEventually) {
  const auto config = golden_config();
  util::ThreadPool pool(2);
  serve::ServerOptions options;
  options.queue_capacity = 1;  // every submit beyond the first blocks
  options.backpressure = serve::BackpressurePolicy::kBlock;
  options.pool = &pool;
  serve::SegHdcServer server(config, options);
  const auto images = golden_batch();
  std::vector<std::future<core::SegmentationResult>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const auto& image : images) {
      futures.push_back(server.submit(image));  // blocks, never throws
    }
  }
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
  }
  EXPECT_EQ(server.stats().rejected, 0u);
}

// --- Failure isolation and stats. ---

TEST(SegHdcServer, BadImageFailsItsFutureWithoutPoisoningThePipeline) {
  const auto config = golden_config();
  const auto images = golden_batch();
  serve::ServerOptions options;
  options.queue_capacity = test_queue_capacity();
  serve::SegHdcServer server(config, options);
  auto good_before = server.submit(images[0]);
  auto bad = server.submit(img::ImageU8(8, 8, 2, 0));  // 2-channel: invalid
  auto good_after = server.submit(images[1]);
  EXPECT_NO_THROW(good_before.get());
  EXPECT_THROW(bad.get(), std::invalid_argument);
  EXPECT_NO_THROW(good_after.get());
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(SegHdcServer, StatsCountersAndLatencyAreCoherentAfterDrain) {
  const auto config = golden_config();
  const auto images = golden_batch();
  serve::ServerOptions options;
  options.queue_capacity = test_queue_capacity();
  options.encode_workers = 2;
  serve::SegHdcServer server(config, options);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& image : images) {
      futures.push_back(server.submit(image));
    }
  }
  for (auto& future : futures) {
    future.get();
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, futures.size());
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.latency.count, futures.size());
  EXPECT_GT(stats.latency.p50_seconds, 0.0);
  EXPECT_LE(stats.latency.p50_seconds, stats.latency.p95_seconds);
  EXPECT_LE(stats.latency.p95_seconds, stats.latency.p99_seconds);
  EXPECT_LE(stats.latency.p99_seconds, stats.latency.max_seconds);
  EXPECT_GE(stats.latency.min_seconds, 0.0);
  EXPECT_GT(stats.throughput_images_per_sec, 0.0);
  EXPECT_GT(stats.uptime_seconds, 0.0);
}

TEST(SegHdcServer, ValidatesOptionsAndConfig) {
  auto bad_config = golden_config();
  bad_config.clusters = 1;
  EXPECT_THROW(serve::SegHdcServer{bad_config}, std::invalid_argument);

  serve::ServerOptions zero_workers;
  zero_workers.encode_workers = 0;
  EXPECT_THROW(serve::SegHdcServer(golden_config(), zero_workers),
               std::invalid_argument);
  serve::ServerOptions zero_cluster;
  zero_cluster.cluster_workers = 0;
  EXPECT_THROW(serve::SegHdcServer(golden_config(), zero_cluster),
               std::invalid_argument);
}

// --- Stage entry points on the session itself: the split the server is
// built on must be bit-identical to the fused path. ---

TEST(SegHdcSession, StageSplitMatchesFusedSegment) {
  auto config = golden_config();
  config.compute_margins = true;
  const core::SegHdcSession session(config);
  const auto gray = make_gray_card(32, 30, 200);
  const auto rgb = make_rgb_card(36, 28);
  core::SegHdcSession::Scratch scratch;
  for (const auto* image : {&gray, &rgb}) {
    const auto fused = session.segment(*image);
    auto split =
        session.cluster_and_finalize(session.encode(*image, scratch));
    expect_results_identical(fused, split);
    // Warm-scratch second pass must not drift either.
    auto split_again =
        session.cluster_and_finalize(session.encode(*image, scratch));
    expect_results_identical(fused, split_again);
    // And the scratch-based fused overload matches too.
    expect_results_identical(fused, session.segment(*image, scratch));
  }
}

}  // namespace
