// Equivalence/determinism tests for SegHdcSession (the reusable,
// many-image serving form of the pipeline): session output must be
// bitwise-identical to the legacy stateless SegHdc path across image
// kinds and configs, segment_many must equal a sequential segment loop
// at every pool size, and the compute_margins=off path must perform (and
// report) zero margin work.
//
// The base seed honours the SEGHDC_TEST_SEED environment variable
// (default 42) so CI pins determinism to one explicit, reproducible
// seed instead of retrying flakes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <vector>

#include "src/core/seghdc.hpp"
#include "src/core/session.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/server.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

std::uint64_t test_seed() {
  const char* env = std::getenv("SEGHDC_TEST_SEED");
  if (env == nullptr || *env == '\0') {
    return 42;
  }
  return std::strtoull(env, nullptr, 10);
}

img::ImageU8 make_gray_card(std::size_t size, std::uint8_t bg,
                            std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  // A faint gradient stripe so dedup sees many distinct colors.
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 make_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

void expect_ops_equal(const core::OpCounts& a, const core::OpCounts& b) {
  EXPECT_EQ(a.bind_xor_bits, b.bind_xor_bits);
  EXPECT_EQ(a.popcount_bits, b.popcount_bits);
  EXPECT_EQ(a.dot_adds, b.dot_adds);
  EXPECT_EQ(a.centroid_update_adds, b.centroid_update_adds);
  EXPECT_EQ(a.distance_evals, b.distance_evals);
}

void expect_results_identical(const core::SegmentationResult& a,
                              const core::SegmentationResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.unique_points, b.unique_points);
  EXPECT_EQ(a.cluster_pixel_counts, b.cluster_pixel_counts);
  expect_ops_equal(a.ops, b.ops);
  expect_ops_equal(a.paper_equivalent_ops, b.paper_equivalent_ops);
}

core::SegHdcConfig base_config() {
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = test_seed();
  return config;
}

TEST(SegHdcSession, MatchesLegacySegHdcAcrossConfigs) {
  const auto gray = make_gray_card(32, 30, 200);
  const auto rgb = make_rgb_card(36, 28);

  std::vector<core::SegHdcConfig> configs;
  configs.push_back(base_config());
  {
    auto c = base_config();  // margins on
    c.compute_margins = true;
    configs.push_back(c);
  }
  {
    auto c = base_config();  // non-default geometry/encoding knobs
    c.dim = 700;  // non-multiple of 64
    c.beta = 1;
    c.alpha = 0.9;
    c.gamma = 2;
    c.clusters = 3;
    configs.push_back(c);
  }
  {
    auto c = base_config();  // ablation encoders + Hamming clustering
    c.position_encoding = core::PositionEncoding::kRandom;
    c.color_encoding = core::ColorEncoding::kRandom;
    c.cluster_distance = core::ClusterDistance::kHamming;
    configs.push_back(c);
  }
  {
    auto c = base_config();  // quantised + early stopping
    c.color_quantization_shift = 3;
    c.stop_on_convergence = true;
    configs.push_back(c);
  }
  {
    auto c = base_config();  // no dedup + fault injection
    c.deduplicate = false;
    c.bit_error_rate = 0.01;
    configs.push_back(c);
  }

  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const auto& config = configs[ci];
    const core::SegHdc legacy(config);
    const core::SegHdcSession session(config);
    for (const auto* image : {&gray, &rgb}) {
      SCOPED_TRACE("config " + std::to_string(ci) +
                   (image == &gray ? " gray" : " rgb"));
      const auto expected = legacy.segment(*image);
      const auto actual = session.segment(*image);
      expect_results_identical(expected, actual);
      // Second call through the now-warm encoder cache must not drift.
      const auto again = session.segment(*image);
      expect_results_identical(expected, again);
    }
  }
}

TEST(SegHdcSession, EncodeMatchesLegacy) {
  const auto image = make_rgb_card(40, 24);
  auto config = base_config();
  config.color_quantization_shift = 2;
  const auto expected = core::SegHdc(config).encode(image);
  const core::SegHdcSession session(config);
  for (int round = 0; round < 2; ++round) {
    const auto actual = session.encode(image);
    EXPECT_EQ(actual.unique_hvs.dim(), expected.unique_hvs.dim());
    ASSERT_EQ(actual.unique_hvs.count(), expected.unique_hvs.count());
    for (std::size_t u = 0; u < expected.unique_hvs.count(); ++u) {
      ASSERT_TRUE(std::ranges::equal(actual.unique_hvs.row(u),
                                     expected.unique_hvs.row(u)))
          << "unique point " << u << " round " << round;
    }
    EXPECT_EQ(actual.weights, expected.weights);
    EXPECT_EQ(actual.pixel_to_unique, expected.pixel_to_unique);
    EXPECT_EQ(actual.intensities, expected.intensities);
    expect_ops_equal(actual.ops, expected.ops);
  }
}

TEST(SegHdcSession, EncoderStateIsBuiltOncePerGeometry) {
  const core::SegHdcSession session(base_config());
  EXPECT_EQ(session.encoder_states_built(), 0u);
  const auto a = make_gray_card(32, 20, 210);
  const auto b = make_gray_card(32, 40, 190);  // same geometry as a
  const auto c = make_rgb_card(32, 32);        // distinct (channels)
  session.segment(a);
  EXPECT_EQ(session.encoder_states_built(), 1u);
  session.segment(b);
  session.segment(a);
  EXPECT_EQ(session.encoder_states_built(), 1u);
  session.segment(c);
  EXPECT_EQ(session.encoder_states_built(), 2u);
}

TEST(SegHdcSession, SegmentManyMatchesSequentialLoopAtEveryPoolSize) {
  // Mixed batch: two geometries, both channel counts, repeated frames.
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 25, 205));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(32, 40, 180));
  images.push_back(images[0]);
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 30, 220));

  auto config = base_config();
  config.compute_margins = true;  // margins must survive batching too

  std::vector<core::SegmentationResult> expected;
  {
    const core::SegHdcSession session(config);
    for (const auto& image : images) {
      expected.push_back(session.segment(image));
    }
  }

  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("pool threads " + std::to_string(threads));
    util::ThreadPool pool(threads);
    const core::SegHdcSession session(config,
                                      core::SegHdcSession::Options{&pool});
    const auto results = session.segment_many(images);
    ASSERT_EQ(results.size(), images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      SCOPED_TRACE("image " + std::to_string(i));
      expect_results_identical(expected[i], results[i]);
    }
    // Three distinct geometries in the batch -> exactly three states.
    EXPECT_EQ(session.encoder_states_built(), 3u);
  }
}

TEST(SegHdcSession, SegmentManyGoldenLabelHash) {
  // Golden regression for the batched path: a fixed batch through a
  // fixed config must keep hashing to the exact same combined label-map
  // value. Rerecord only after confirming an intended pipeline change.
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));

  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  util::ThreadPool pool(3);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto results = session.segment_many(images);
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  static constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;
  EXPECT_EQ(hash, kGoldenBatchHash)
      << "segment_many combined label hash drifted";
}

TEST(SegHdcSession, ServerMatchesSegmentManyOnTheGoldenBatch) {
  // Satellite equivalence gate for the serving layer: the async
  // pipelined SegHdcServer (src/serve/) must reproduce segment_many's
  // combined label hash — and therefore the golden constant — on the
  // exact batch above. Pipelining changes completion order, never
  // content.
  std::vector<img::ImageU8> images;
  images.push_back(make_gray_card(32, 30, 200));
  images.push_back(make_rgb_card(36, 28));
  images.push_back(make_gray_card(24, 20, 235));

  core::SegHdcConfig config;  // fixed seed on purpose (not env-driven)
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;

  util::ThreadPool pool(3);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto batch = session.segment_many(images);

  serve::ServerOptions options;
  options.queue_capacity = 2;
  options.encode_workers = 2;
  options.cluster_workers = 2;
  options.pool = &pool;
  serve::SegHdcServer server(config, options);
  std::vector<std::future<core::SegmentationResult>> futures;
  for (const auto& image : images) {
    futures.push_back(server.submit(image));
  }

  std::uint64_t batch_hash = 14695981039346656037ULL;
  std::uint64_t server_hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < images.size(); ++i) {
    batch_hash = metrics::label_map_hash(batch[i].labels, batch_hash);
    server_hash =
        metrics::label_map_hash(futures[i].get().labels, server_hash);
  }
  EXPECT_EQ(server_hash, batch_hash)
      << "SegHdcServer labels diverged from segment_many";
  static constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;
  EXPECT_EQ(server_hash, kGoldenBatchHash);
}

TEST(SegHdcSession, SegmentManyEmptyBatch) {
  const core::SegHdcSession session(base_config());
  EXPECT_TRUE(session.segment_many({}).empty());
}

TEST(SegHdcSession, ValidatesConfigAndImages) {
  auto bad = base_config();
  bad.clusters = 1;
  EXPECT_THROW(core::SegHdcSession{bad}, std::invalid_argument);

  const core::SegHdcSession session(base_config());
  img::ImageU8 two_channel(8, 8, 2, 0);
  EXPECT_THROW(session.segment(two_channel), std::invalid_argument);
  std::vector<img::ImageU8> batch{make_gray_card(16, 10, 200), two_channel};
  EXPECT_THROW(session.segment_many(batch), std::invalid_argument);
}

// Satellite audit: with compute_margins off, margin work is truly
// skipped — margins stay empty and the reported ops match a margins-off
// run exactly; turning margins on adds only margin-attributable ops and
// never changes the labels.
TEST(SegHdcSession, MarginWorkFullySkippedWhenDisabled) {
  const auto image = make_gray_card(32, 25, 210);
  auto off_config = base_config();
  ASSERT_FALSE(off_config.compute_margins);
  auto on_config = off_config;
  on_config.compute_margins = true;

  const core::SegHdcSession off_session(off_config);
  const auto off_a = off_session.segment(image);
  const auto off_b = off_session.segment(image);
  EXPECT_TRUE(off_a.margins.empty());
  EXPECT_TRUE(off_b.margins.empty());
  expect_ops_equal(off_a.ops, off_b.ops);

  const auto on = core::SegHdcSession(on_config).segment(image);
  ASSERT_FALSE(on.margins.empty());
  EXPECT_EQ(on.labels, off_a.labels);
  // Margin work shows up only in the fields it spends: point norms
  // (popcounts), centroid dots, and distance evaluations — one extra
  // assignment-shaped pass over the unique points.
  const auto unique = static_cast<std::uint64_t>(off_a.unique_points);
  const auto& config = off_config;
  EXPECT_EQ(on.ops.bind_xor_bits, off_a.ops.bind_xor_bits);
  EXPECT_EQ(on.ops.centroid_update_adds, off_a.ops.centroid_update_adds);
  EXPECT_EQ(on.ops.popcount_bits,
            off_a.ops.popcount_bits + unique * config.dim);
  EXPECT_EQ(on.ops.dot_adds,
            off_a.ops.dot_adds + unique * config.clusters * config.dim);
  EXPECT_EQ(on.ops.distance_evals,
            off_a.ops.distance_evals + unique * config.clusters);
}

}  // namespace
