// Backend-equivalence suite for the runtime-dispatched SIMD kernel
// subsystem (src/hdc/simd/): every registered backend must agree with
// the scalar reference BIT FOR BIT on random and adversarial inputs
// (non-multiple-of-64 dims, all-ones rows, zero-padding words, spans
// long enough to exercise the 16-word Harley-Seal blocks and vector
// tails), the word-blocked CountPlanes dot must equal the bit-serial
// dot on every backend, and — the golden gate — the PR-2 batch label
// hash must be identical under every backend forced via the dispatch
// override. Plus registry/dispatch behaviour: selection, forcing,
// unknown-name rejection, and the SegHdcConfig::kernel_backend
// plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/session.hpp"
#include "src/hdc/accumulator.hpp"
#include "src/hdc/hypervector.hpp"
#include "src/hdc/kernels.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/hdc/simd/cpu_features.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace seghdc;
using namespace seghdc::hdc;

// Restores automatic selection when a test that forces backends exits,
// so suite order never leaks a forced backend.
struct BackendSelectionGuard {
  ~BackendSelectionGuard() { simd::reset_backend_selection(); }
};

std::vector<const simd::KernelBackend*> available_backends() {
  std::vector<const simd::KernelBackend*> backends;
  for (const auto* backend : simd::registered_backends()) {
    if (backend->available()) {
      backends.push_back(backend);
    }
  }
  return backends;
}

/// Word spans that hunt for backend-specific failure modes: sizes around
/// the 4-word AVX2 / 2-word NEON / 16-word Harley-Seal block boundaries,
/// all-ones and all-zero contents, a lone high bit, and (via the dims in
/// the dimension-based tests) zero-padding tails.
std::vector<std::vector<std::uint64_t>> adversarial_word_sets(
    std::size_t words) {
  std::vector<std::vector<std::uint64_t>> sets;
  sets.emplace_back(words, 0ULL);
  sets.emplace_back(words, ~0ULL);
  sets.emplace_back(words, 0xAAAAAAAAAAAAAAAAULL);
  sets.emplace_back(words, 0x8000000000000001ULL);
  if (words > 0) {
    std::vector<std::uint64_t> lone(words, 0ULL);
    lone.back() = std::uint64_t{1} << 63;
    sets.push_back(std::move(lone));
  }
  util::Rng rng(words * 131 + 7);
  std::vector<std::uint64_t> random(words);
  for (auto& word : random) {
    word = rng();
  }
  sets.push_back(std::move(random));
  return sets;
}

// Span lengths straddling every backend's block size (AVX2 processes 4
// words/vector, NEON 2, Harley-Seal 16) plus a long streaming case.
const std::vector<std::size_t> kWordCounts{0, 1, 2, 3, 4, 5, 7, 8,
                                           15, 16, 17, 31, 33, 157, 1000};

TEST(SimdRegistry, ScalarIsAlwaysRegisteredAndAvailable) {
  const auto* scalar = simd::find_backend("scalar");
  ASSERT_NE(scalar, nullptr);
  EXPECT_TRUE(scalar->available());
  EXPECT_FALSE(simd::registered_backends().empty());
  // "auto" is a selection mode, not a backend.
  EXPECT_EQ(simd::find_backend("auto"), nullptr);
  EXPECT_EQ(simd::find_backend("no-such-backend"), nullptr);
}

TEST(SimdRegistry, ActiveBackendIsAvailableAndForcible) {
  const BackendSelectionGuard guard;
  const auto& active = simd::active_backend();
  EXPECT_TRUE(active.available());
  for (const auto* backend : available_backends()) {
    const auto& forced = simd::force_backend(backend->name);
    EXPECT_STREQ(forced.name, backend->name);
    EXPECT_STREQ(simd::active_backend().name, backend->name);
  }
  // "auto" re-runs detection and must land on an available backend.
  const auto& auto_selected = simd::force_backend("auto");
  EXPECT_TRUE(auto_selected.available());
}

TEST(SimdRegistry, ForcingUnknownOrUnavailableBackendThrows) {
  const BackendSelectionGuard guard;
  EXPECT_THROW(simd::force_backend("no-such-backend"),
               std::invalid_argument);
  for (const auto* backend : simd::registered_backends()) {
    if (!backend->available()) {
      EXPECT_THROW(simd::force_backend(backend->name),
                   std::invalid_argument);
    }
  }
  // The feature string used in error messages/report headers is
  // non-empty on every architecture.
  EXPECT_FALSE(simd::cpu_feature_string().empty());
}

TEST(SimdRegistry, EnvOverrideIsHonouredOnReset) {
  // The SEGHDC_KERNEL_BACKEND environment variable is read when
  // selection resolves; resetting selection re-reads it. Restore the
  // caller's value afterwards so a CI-matrix-forced run keeps its
  // backend for the rest of this binary.
  const char* original = std::getenv("SEGHDC_KERNEL_BACKEND");
  const std::string saved = original != nullptr ? original : "";
  const BackendSelectionGuard guard;

  ::setenv("SEGHDC_KERNEL_BACKEND", "scalar", 1);
  simd::reset_backend_selection();
  EXPECT_STREQ(simd::active_backend().name, "scalar");

  // An unknown forced name is a hard error, never a silent fallback.
  ::setenv("SEGHDC_KERNEL_BACKEND", "definitely-not-a-backend", 1);
  simd::reset_backend_selection();
  EXPECT_THROW(simd::active_backend(), std::invalid_argument);

  // "auto" and "" both mean automatic selection.
  ::setenv("SEGHDC_KERNEL_BACKEND", "auto", 1);
  simd::reset_backend_selection();
  EXPECT_TRUE(simd::active_backend().available());

  if (original != nullptr) {
    ::setenv("SEGHDC_KERNEL_BACKEND", saved.c_str(), 1);
  } else {
    ::unsetenv("SEGHDC_KERNEL_BACKEND");
  }
}

TEST(SimdBackends, WordKernelsMatchScalarOnAdversarialSpans) {
  const auto* scalar = simd::find_backend("scalar");
  ASSERT_NE(scalar, nullptr);
  for (const std::size_t words : kWordCounts) {
    const auto sets = adversarial_word_sets(words);
    for (std::size_t ai = 0; ai < sets.size(); ++ai) {
      for (std::size_t bi = 0; bi < sets.size(); ++bi) {
        const auto& a = sets[ai];
        const auto& b = sets[bi];
        const auto expected_pop = scalar->popcount(a);
        const auto expected_ham = scalar->hamming(a, b);
        const auto expected_and = scalar->and_popcount(a, b);
        std::vector<std::uint64_t> expected_xor(words);
        scalar->xor_bind(expected_xor, a, b);
        for (const auto* backend : available_backends()) {
          EXPECT_EQ(backend->popcount(a), expected_pop)
              << backend->name << " words=" << words << " set=" << ai;
          EXPECT_EQ(backend->hamming(a, b), expected_ham)
              << backend->name << " words=" << words << " sets=" << ai
              << "," << bi;
          EXPECT_EQ(backend->and_popcount(a, b), expected_and)
              << backend->name << " words=" << words << " sets=" << ai
              << "," << bi;
          std::vector<std::uint64_t> got_xor(words, 0x5A5A5A5A5A5A5A5AULL);
          backend->xor_bind(got_xor, a, b);
          EXPECT_EQ(got_xor, expected_xor)
              << backend->name << " words=" << words;
        }
      }
    }
  }
}

TEST(SimdBackends, KernelLayerMatchesReferenceAtNonWordDims) {
  // Through the public kernel layer (dispatch + padding invariants):
  // random HVs at dimensions straddling word boundaries, under every
  // backend forced in turn.
  const BackendSelectionGuard guard;
  const std::vector<std::size_t> dims{8, 63, 64, 65, 127, 128, 193,
                                      1000, 2049};
  for (const auto* backend : available_backends()) {
    simd::force_backend(backend->name);
    util::Rng rng(31);
    for (const auto dim : dims) {
      const auto a = HyperVector::random(dim, rng);
      const auto b = HyperVector::random(dim, rng);
      std::size_t per_bit_ham = 0;
      std::size_t per_bit_pop = 0;
      for (std::size_t i = 0; i < dim; ++i) {
        per_bit_ham += a.get(i) != b.get(i) ? 1 : 0;
        per_bit_pop += a.get(i) ? 1 : 0;
      }
      EXPECT_EQ(kernels::popcount_words(a.words()), per_bit_pop)
          << backend->name << " dim=" << dim;
      EXPECT_EQ(kernels::hamming_words(a.words(), b.words()), per_bit_ham)
          << backend->name << " dim=" << dim;
      EXPECT_EQ(a.popcount(), per_bit_pop) << backend->name;
      EXPECT_EQ(HyperVector::hamming(a, b), per_bit_ham) << backend->name;
    }
  }
}

TEST(SimdBackends, AccumulateMatchesScalarOnAdversarialSpans) {
  // The fused centroid-accumulate kernel: every backend must produce
  // the scalar walk's exact post-add counts AND pre-add dot, including
  // weights > 1, block-boundary span lengths, and a counts vector
  // shorter than 64 * words (partial trailing block, exercised with the
  // padding invariant the real call sites guarantee).
  const auto* scalar = simd::find_backend("scalar");
  ASSERT_NE(scalar, nullptr);
  const std::vector<std::int64_t> weights{1, 2, 7, 100000};
  for (const std::size_t words : kWordCounts) {
    auto sets = adversarial_word_sets(words);
    // A short-counts variant: 30 fewer count slots than bits, with the
    // top 30 bits of the last word masked to honour zero padding.
    const std::size_t full_counts = words * 64;
    const std::size_t short_counts =
        words == 0 ? 0 : full_counts - 30;
    for (std::size_t si = 0; si < sets.size(); ++si) {
      for (const bool shorten : {false, true}) {
        auto span_words = sets[si];
        const std::size_t count_size = shorten ? short_counts : full_counts;
        if (shorten && words > 0) {
          span_words.back() &= ~std::uint64_t{0} >> 30;
        }
        util::Rng rng(words * 977 + si * 31 + (shorten ? 1 : 0));
        std::vector<std::int64_t> base_counts(count_size);
        for (auto& count : base_counts) {
          count = static_cast<std::int64_t>(rng() % 4096) - 1024;
        }
        for (const std::int64_t weight : weights) {
          auto expected_counts = base_counts;
          const auto expected_dot = scalar->accumulate_words(
              expected_counts, span_words, weight);
          for (const auto* backend : available_backends()) {
            auto got_counts = base_counts;
            const auto got_dot =
                backend->accumulate_words(got_counts, span_words, weight);
            EXPECT_EQ(got_dot, expected_dot)
                << backend->name << " words=" << words << " set=" << si
                << " weight=" << weight << " shorten=" << shorten;
            EXPECT_EQ(got_counts, expected_counts)
                << backend->name << " words=" << words << " set=" << si
                << " weight=" << weight << " shorten=" << shorten;
          }
        }
      }
    }
  }
}

TEST(SimdBackends, AccumulatorAddIdenticalUnderEveryBackend) {
  // Through the public Accumulator API (dispatch + padding + the
  // incremental norm): weighted adds at dimensions straddling word
  // boundaries must leave identical counts, total weight, and norm
  // under every forced backend.
  const BackendSelectionGuard guard;
  const std::vector<std::size_t> dims{8, 63, 64, 65, 127, 322, 1000};
  for (const auto dim : dims) {
    std::vector<std::int64_t> expected_counts;
    double expected_norm = 0.0;
    std::uint64_t expected_weight = 0;
    bool have_expected = false;
    for (const auto* backend : available_backends()) {
      simd::force_backend(backend->name);
      util::Rng rng(dim * 3 + 1);
      Accumulator acc(dim);
      for (std::uint32_t i = 0; i < 12; ++i) {
        acc.add(HyperVector::random(dim, rng), 1 + (i * 37) % 400);
      }
      if (!have_expected) {
        expected_counts.assign(acc.counts().begin(), acc.counts().end());
        expected_norm = acc.norm();
        expected_weight = acc.total_weight();
        have_expected = true;
        continue;
      }
      EXPECT_TRUE(std::equal(acc.counts().begin(), acc.counts().end(),
                             expected_counts.begin(), expected_counts.end()))
          << backend->name << " dim=" << dim;
      EXPECT_EQ(acc.total_weight(), expected_weight) << backend->name;
      EXPECT_DOUBLE_EQ(acc.norm(), expected_norm)
          << backend->name << " dim=" << dim;
    }
  }
}

TEST(SimdBackends, CountPlanesBuildIdenticalUnderEveryBackend) {
  // snapshot_planes rides the dispatched build_planes slot: the packed
  // plane words must be identical under every forced backend, at dims
  // that leave a partial trailing 64-count block.
  const BackendSelectionGuard guard;
  const std::vector<std::size_t> dims{8, 64, 65, 127, 193, 1000};
  for (const auto dim : dims) {
    std::vector<std::vector<std::uint64_t>> expected_planes;
    bool have_expected = false;
    for (const auto* backend : available_backends()) {
      simd::force_backend(backend->name);
      util::Rng rng(dim * 7 + 5);
      Accumulator acc(dim);
      for (int i = 0; i < 9; ++i) {
        acc.add(HyperVector::random(dim, rng),
                static_cast<std::uint32_t>(1 + rng.next_below(1000)));
      }
      kernels::CountPlanes planes;
      acc.snapshot_planes(planes);
      std::vector<std::vector<std::uint64_t>> got;
      for (std::size_t b = 0; b < planes.plane_count(); ++b) {
        got.emplace_back(planes.plane(b).begin(), planes.plane(b).end());
      }
      if (!have_expected) {
        expected_planes = std::move(got);
        have_expected = true;
        continue;
      }
      EXPECT_EQ(got, expected_planes) << backend->name << " dim=" << dim;
    }
  }
}

TEST(SimdBackends, CountPlanesDotMatchesBitSerialOnEveryBackend) {
  const std::vector<std::size_t> dims{8, 63, 64, 65, 127, 128, 322, 1000};
  util::Rng rng(47);
  for (const auto dim : dims) {
    // Weighted adds drive counts well past one bit so many planes
    // exist; an extra huge-weight add exercises high planes.
    Accumulator acc(dim);
    for (int i = 0; i < 9; ++i) {
      acc.add(HyperVector::random(dim, rng),
              static_cast<std::uint32_t>(1 + rng.next_below(1000)));
    }
    acc.add(HyperVector::random(dim, rng), 100000);
    kernels::CountPlanes planes;
    acc.snapshot_planes(planes);
    EXPECT_EQ(planes.dim(), dim);
    const auto probe = HyperVector::random(dim, rng);
    const auto expected = acc.dot(probe);
    for (const auto* backend : available_backends()) {
      EXPECT_EQ(kernels::dot_planes(planes, probe.words(), *backend),
                expected)
          << backend->name << " dim=" << dim;
      EXPECT_EQ(backend->dot_counts(acc.counts(), probe.words()), expected)
          << backend->name << " dim=" << dim;
    }
    // And the distance wrapper agrees with the bit-serial formulation
    // exactly (same integer dot, same float expression).
    const double point_norm =
        std::sqrt(static_cast<double>(probe.popcount()));
    EXPECT_DOUBLE_EQ(
        kernels::cosine_distance_planes(planes, acc.norm(), probe.words(),
                                        point_norm),
        kernels::cosine_distance_words(acc.counts(), acc.norm(),
                                       probe.words(), point_norm));
  }
}

TEST(SimdBackends, CountPlanesHandlesZeroAndRebuild) {
  kernels::CountPlanes planes;
  const std::vector<std::int64_t> zeros(100, 0);
  planes.build(zeros);
  EXPECT_EQ(planes.plane_count(), 0u);
  const HyperVector ones_probe = [&] {
    HyperVector hv(100);
    for (std::size_t i = 0; i < 100; ++i) {
      hv.set(i, true);
    }
    return hv;
  }();
  EXPECT_EQ(kernels::dot_planes(planes, ones_probe.words()), 0);
  // Rebuild on the same object with live counts (storage reuse path).
  std::vector<std::int64_t> counts(100, 0);
  counts[0] = 5;
  counts[64] = 9;
  counts[99] = 1;
  planes.build(counts);
  EXPECT_EQ(planes.plane_count(), 4u);  // bit_width(9)
  EXPECT_EQ(kernels::dot_planes(planes, ones_probe.words()), 15);
  // Negative counts are rejected (they would index past the planes).
  std::vector<std::int64_t> negative(100, 0);
  negative[3] = -1;
  EXPECT_THROW(planes.build(negative), std::invalid_argument);
}

// --- The golden gate: the PR-2 batch label hash (pinned in
// tests/test_session.cpp) must be bit-identical under EVERY registered
// backend. Same images, same config, same hash constant. ---

img::ImageU8 golden_gray_card(std::size_t size, std::uint8_t bg,
                              std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 golden_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

// Must match tests/test_session.cpp SegmentManyGoldenLabelHash.
constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;

std::uint64_t golden_batch_hash() {
  std::vector<img::ImageU8> images;
  images.push_back(golden_gray_card(32, 30, 200));
  images.push_back(golden_rgb_card(36, 28));
  images.push_back(golden_gray_card(24, 20, 235));

  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  util::ThreadPool pool(3);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto results = session.segment_many(images);
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

TEST(SimdBackends, GoldenLabelHashIdenticalUnderEveryBackend) {
  const BackendSelectionGuard guard;
  for (const auto* backend : available_backends()) {
    simd::force_backend(backend->name);
    EXPECT_EQ(golden_batch_hash(), kGoldenBatchHash)
        << "label hash drifted under backend " << backend->name;
  }
}

TEST(SimdBackends, ConfigKernelBackendOverridePlumbs) {
  const BackendSelectionGuard guard;
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 2;
  config.kernel_backend = "scalar";
  const core::SegHdcSession session(config);
  EXPECT_STREQ(simd::active_backend().name, "scalar");

  config.kernel_backend = "no-such-backend";
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
}

TEST(SimdBackends, StreamingSegmentManyMatchesCollectingOverload) {
  // The streaming sink delivers exactly the collecting overload's
  // results (same indices, same label maps), once each.
  std::vector<img::ImageU8> images;
  images.push_back(golden_gray_card(32, 30, 200));
  images.push_back(golden_rgb_card(36, 28));
  images.push_back(golden_gray_card(24, 20, 235));

  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  util::ThreadPool pool(3);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto collected = session.segment_many(images);
  std::vector<int> delivered(images.size(), 0);
  std::vector<core::SegmentationResult> streamed(images.size());
  session.segment_many(images,
                       [&](std::size_t i, core::SegmentationResult&& r) {
                         ++delivered[i];
                         streamed[i] = std::move(r);
                       });
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(delivered[i], 1) << "image " << i;
    EXPECT_EQ(streamed[i].labels, collected[i].labels) << "image " << i;
    EXPECT_EQ(streamed[i].cluster_pixel_counts,
              collected[i].cluster_pixel_counts);
  }
}

}  // namespace
