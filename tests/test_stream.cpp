// Warm-start temporal serving (segment_stream): determinism and drift
// bounds. The contract under test, layer by layer:
//   - frame 0 of a stream (and the first after reset() or a geometry
//     change) is the exact cold path: bit-identical to segment();
//   - a frame byte-identical to its predecessor replays the cached
//     result bit-for-bit with all bands reused and 0 K-Means iterations;
//   - warm-started labels on changed frames may differ from cold by
//     design, but the drift is bounded (permutation-invariant label
//     agreement >= threshold on synthetic pan/jitter scenes) and the
//     stream output is deterministic: its own golden hash holds at pool
//     sizes {1,2,4} x tile_rows {1,3,auto} on every registered backend;
//   - the cold path is completely unaffected: the PR-2 golden batch
//     hash still passes on a session that has served streams;
//   - the server stream path (open_stream/submit) delivers exactly the
//     session stream results, in order, at any worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/seghdc.hpp"
#include "src/core/session.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/imaging/image.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/serve/server.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

struct BackendSelectionGuard {
  ~BackendSelectionGuard() { hdc::simd::reset_backend_selection(); }
};

core::SegHdcConfig stream_config() {
  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  return config;
}

/// Two-region card with a noisy first row — the golden-card shape the
/// other suites use, as a video background.
img::ImageU8 scene_background(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 1, 200);
  for (std::size_t y = height / 4; y < 3 * height / 4; ++y) {
    for (std::size_t x = width / 4; x < 3 * width / 4; ++x) {
      image(x, y) = 60;
    }
  }
  for (std::size_t x = 0; x < width; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

/// The background with a small dark square at (x0, y0) — the moving
/// object of the synthetic pan/jitter scenes. Rows outside the square
/// keep their exact background bytes, so bands there are reusable.
img::ImageU8 scene_with_square(std::size_t width, std::size_t height,
                               std::size_t x0, std::size_t y0) {
  img::ImageU8 image = scene_background(width, height);
  for (std::size_t y = y0; y < std::min(height, y0 + 5); ++y) {
    for (std::size_t x = x0; x < std::min(width, x0 + 5); ++x) {
      image(x, y) = 90;
    }
  }
  return image;
}

/// The golden frame sequence: static -> object appears -> one-pixel pan
/// -> identical frame (replay) -> object gone (back to the start).
std::vector<img::ImageU8> golden_frames() {
  std::vector<img::ImageU8> frames;
  frames.push_back(scene_background(32, 30));
  frames.push_back(scene_with_square(32, 30, 8, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));
  frames.push_back(scene_with_square(32, 30, 9, 20));  // identical: replay
  frames.push_back(scene_background(32, 30));
  return frames;
}

void expect_results_identical(const core::SegmentationResult& expected,
                              const core::SegmentationResult& actual) {
  EXPECT_EQ(actual.labels, expected.labels);
  EXPECT_EQ(actual.margins, expected.margins);
  EXPECT_EQ(actual.unique_points, expected.unique_points);
  EXPECT_EQ(actual.cluster_pixel_counts, expected.cluster_pixel_counts);
}

/// Permutation-invariant label agreement: warm and cold runs may assign
/// cluster indices in different orders, so score the best relabeling
/// (clusters <= 4 keeps the brute force trivial).
double label_agreement(const img::LabelMap& a, const img::LabelMap& b,
                       std::size_t clusters) {
  EXPECT_EQ(a.pixel_count(), b.pixel_count());
  std::vector<std::uint32_t> perm(clusters);
  std::iota(perm.begin(), perm.end(), 0u);
  std::size_t best = 0;
  do {
    std::size_t matches = 0;
    for (std::size_t p = 0; p < a.pixel_count(); ++p) {
      if (a.pixels()[p] == perm[b.pixels()[p]]) {
        ++matches;
      }
    }
    best = std::max(best, matches);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return static_cast<double>(best) / static_cast<double>(a.pixel_count());
}

TEST(Stream, FirstFrameIsExactlyTheColdPath) {
  auto config = stream_config();
  config.compute_margins = true;
  const core::SegHdcSession session(config);
  const auto frame = scene_with_square(32, 30, 8, 20);
  const auto cold = session.segment(frame);

  core::SegHdcSession::Stream stream;
  const auto warm = session.segment_stream(frame, stream);
  expect_results_identical(cold, warm.result);
  EXPECT_EQ(warm.result.iterations_run, cold.iterations_run);
  EXPECT_FALSE(warm.stats.warm);
  EXPECT_FALSE(warm.stats.replayed);
  EXPECT_EQ(warm.stats.frame_index, 0u);
  EXPECT_GT(warm.stats.tiles_total, 0u);
  EXPECT_EQ(warm.stats.tiles_encoded, warm.stats.tiles_total);
  EXPECT_EQ(warm.stats.tiles_reused, 0u);
}

TEST(Stream, IdenticalFramesReplayBitForBit) {
  auto config = stream_config();
  config.compute_margins = true;
  const core::SegHdcSession session(config);
  const auto frame = scene_with_square(32, 30, 8, 20);

  core::SegHdcSession::Stream stream;
  const auto first = session.segment_stream(frame, stream);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto replay = session.segment_stream(frame, stream);
    expect_results_identical(first.result, replay.result);
    EXPECT_TRUE(replay.stats.replayed);
    EXPECT_TRUE(replay.stats.warm);
    EXPECT_EQ(replay.stats.kmeans_iterations, 0u);
    EXPECT_EQ(replay.stats.tiles_reused, replay.stats.tiles_total);
    EXPECT_EQ(replay.stats.tiles_encoded, 0u);
    EXPECT_EQ(replay.result.ops.bind_xor_bits, 0u);  // no work performed
  }
  EXPECT_EQ(stream.last_stats().frame_index, 3u);
}

TEST(Stream, PanAndJitterStayNearColdLabels) {
  // A small object moving one pixel per frame over a static background:
  // the warm-start drift bound. The threshold is deliberately
  // conservative — observed agreement on these scenes is ~1.0, and a
  // drop below 95% would mean warm seeding changed the segmentation
  // qualitatively, not just at contested boundary pixels.
  const auto config = stream_config();
  const core::SegHdcSession session(config);
  core::SegHdcSession::Stream stream;

  std::vector<img::ImageU8> frames;
  frames.push_back(scene_background(48, 40));
  for (std::size_t step = 0; step < 6; ++step) {
    frames.push_back(scene_with_square(48, 40, 10 + step, 28));  // pan
  }
  frames.push_back(scene_with_square(48, 40, 15, 29));  // jitter down
  frames.push_back(scene_with_square(48, 40, 14, 28));  // jitter back

  bool any_tiles_reused = false;
  bool any_fewer_iterations = false;
  for (const auto& frame : frames) {
    const auto warm = session.segment_stream(frame, stream);
    const auto cold = session.segment(frame);
    const double agreement =
        label_agreement(cold.labels, warm.result.labels, config.clusters);
    EXPECT_GE(agreement, 0.95) << "frame " << warm.stats.frame_index;
    if (warm.stats.warm) {
      any_tiles_reused |= warm.stats.tiles_reused > 0;
      any_fewer_iterations |=
          warm.stats.kmeans_iterations < cold.iterations_run;
    }
  }
  // The measured speedup the demo reports must actually exist: at least
  // one warm frame reused bands, and at least one converged in fewer
  // iterations than its cold run.
  EXPECT_TRUE(any_tiles_reused);
  EXPECT_TRUE(any_fewer_iterations);
}

TEST(Stream, ColdPathsCompletelyUnaffectedByStreamUse) {
  const auto config = stream_config();
  const core::SegHdcSession session(config);
  const auto probe = scene_with_square(32, 30, 8, 20);
  const auto before = session.segment(probe);

  core::SegHdcSession::Stream stream;
  for (const auto& frame : golden_frames()) {
    session.segment_stream(frame, stream);
  }
  const auto after = session.segment(probe);
  expect_results_identical(before, after);
}

TEST(Stream, ResetForgetsTemporalHistory) {
  const auto config = stream_config();
  const core::SegHdcSession session(config);
  const auto frame = scene_with_square(32, 30, 8, 20);

  core::SegHdcSession::Stream stream;
  session.segment_stream(frame, stream);
  stream.reset();
  const auto again = session.segment_stream(frame, stream);
  EXPECT_FALSE(again.stats.warm);
  EXPECT_FALSE(again.stats.replayed);
  EXPECT_EQ(again.stats.frame_index, 0u);
  expect_results_identical(session.segment(frame), again.result);
}

TEST(Stream, GeometryChangeRunsColdThenResumesWarm) {
  const auto config = stream_config();
  const core::SegHdcSession session(config);
  core::SegHdcSession::Stream stream;

  session.segment_stream(scene_with_square(32, 30, 8, 20), stream);
  const auto small = scene_with_square(24, 20, 6, 12);
  const auto switched = session.segment_stream(small, stream);
  EXPECT_FALSE(switched.stats.warm);  // temporal state was dropped
  expect_results_identical(session.segment(small), switched.result);

  const auto replay = session.segment_stream(small, stream);
  EXPECT_TRUE(replay.stats.replayed);
  expect_results_identical(switched.result, replay.result);
}

TEST(Stream, FallbackConfigsStillStreamCorrectly) {
  // Dedup off and fault injection on are incompatible with the band
  // cache (tiles_total = 0) but replay and warm seeding still apply.
  for (const bool faulty : {false, true}) {
    auto config = stream_config();
    if (faulty) {
      config.bit_error_rate = 0.01;
    } else {
      config.deduplicate = false;
    }
    SCOPED_TRACE(faulty ? "bit_error_rate=0.01" : "deduplicate=false");
    const core::SegHdcSession session(config);
    const auto frame = scene_with_square(32, 30, 8, 20);

    core::SegHdcSession::Stream stream;
    const auto first = session.segment_stream(frame, stream);
    EXPECT_EQ(first.stats.tiles_total, 0u);
    expect_results_identical(session.segment(frame), first.result);

    const auto replay = session.segment_stream(frame, stream);
    EXPECT_TRUE(replay.stats.replayed);
    expect_results_identical(first.result, replay.result);

    const auto moved = scene_with_square(32, 30, 9, 20);
    const auto warm = session.segment_stream(moved, stream);
    EXPECT_TRUE(warm.stats.warm);
    EXPECT_EQ(warm.stats.tiles_total, 0u);
    EXPECT_GE(label_agreement(session.segment(moved).labels,
                              warm.result.labels, config.clusters),
              0.95);
  }
}

// --- Golden stream hash: the warm-start path has its OWN pinned
// labels, separate from the cold batch hash — stream results must be
// bit-identical at every pool size, tile size, and kernel backend. ---

/// Pinned at seed 42, dim 512: the warm-start labels of the golden
/// frame sequence. Any drift here means the stream path's determinism
/// broke (pool size, tiling, backend, or warm-seeding changed results).
constexpr std::uint64_t kGoldenStreamHash = 6522647722573592175ULL;

std::uint64_t golden_stream_hash(std::size_t threads,
                                 std::size_t tile_rows) {
  auto config = stream_config();
  config.tile_rows = tile_rows;
  util::ThreadPool pool(threads);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  core::SegHdcSession::Stream stream;
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& frame : golden_frames()) {
    const auto warm = session.segment_stream(frame, stream);
    hash = metrics::label_map_hash(warm.result.labels, hash);
  }
  return hash;
}

TEST(Stream, GoldenStreamHashStableAcrossTilesPoolsAndBackends) {
  const BackendSelectionGuard guard;
  for (const auto* backend : hdc::simd::registered_backends()) {
    if (!backend->available()) {
      continue;
    }
    hdc::simd::force_backend(backend->name);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const std::size_t tile_rows : {1u, 3u, 0u}) {  // 0 = auto
        EXPECT_EQ(golden_stream_hash(threads, tile_rows), kGoldenStreamHash)
            << "stream hash drifted: backend=" << backend->name
            << " threads=" << threads << " tile_rows=" << tile_rows;
      }
    }
  }
}

// --- Server stream path: open_stream/submit must deliver exactly the
// session stream results, in submission order, at any worker count. ---

TEST(Stream, ServerStreamMatchesSessionStream) {
  const auto config = stream_config();
  const auto frames = golden_frames();

  // Session-level reference, run serially.
  const core::SegHdcSession reference(config);
  core::SegHdcSession::Stream reference_stream;
  std::vector<core::StreamFrameResult> expected;
  for (const auto& frame : frames) {
    expected.push_back(reference.segment_stream(frame, reference_stream));
  }

  for (const std::size_t encode_workers : {1u, 3u}) {
    SCOPED_TRACE("encode_workers=" + std::to_string(encode_workers));
    serve::ServerOptions options;
    options.encode_workers = encode_workers;
    serve::SegHdcServer server(config, options);
    auto stream = server.open_stream();
    std::vector<std::future<core::StreamFrameResult>> futures;
    for (const auto& frame : frames) {
      futures.push_back(server.submit(stream, frame));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto actual = futures[i].get();
      expect_results_identical(expected[i].result, actual.result);
      EXPECT_EQ(actual.stats.frame_index, expected[i].stats.frame_index);
      EXPECT_EQ(actual.stats.warm, expected[i].stats.warm);
      EXPECT_EQ(actual.stats.replayed, expected[i].stats.replayed);
      EXPECT_EQ(actual.stats.tiles_reused, expected[i].stats.tiles_reused);
      EXPECT_EQ(actual.stats.kmeans_iterations,
                expected[i].stats.kmeans_iterations);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.stream.frames, frames.size());
    EXPECT_EQ(stats.completed, frames.size());
    EXPECT_GE(stats.stream.warm_frames, 1u);
    EXPECT_GE(stats.stream.replayed_frames, 1u);
    EXPECT_GT(stats.stream.tiles_reused, 0u);
  }
}

TEST(Stream, TwoStreamsOnOneServerStayIndependent) {
  const auto config = stream_config();
  const core::SegHdcSession reference(config);
  const auto frame_a = scene_with_square(32, 30, 8, 20);
  const auto frame_b = scene_with_square(24, 20, 6, 12);

  core::SegHdcSession::Stream ref_a;
  core::SegHdcSession::Stream ref_b;
  const auto expected_a0 = reference.segment_stream(frame_a, ref_a);
  const auto expected_b0 = reference.segment_stream(frame_b, ref_b);
  const auto expected_a1 = reference.segment_stream(frame_a, ref_a);
  const auto expected_b1 = reference.segment_stream(frame_b, ref_b);

  serve::ServerOptions options;
  options.encode_workers = 2;
  serve::SegHdcServer server(config, options);
  auto stream_a = server.open_stream();
  auto stream_b = server.open_stream();
  auto a0 = server.submit(stream_a, frame_a);
  auto b0 = server.submit(stream_b, frame_b);
  auto a1 = server.submit(stream_a, frame_a);
  auto b1 = server.submit(stream_b, frame_b);
  expect_results_identical(expected_a0.result, a0.get().result);
  expect_results_identical(expected_b0.result, b0.get().result);
  const auto ra1 = a1.get();
  const auto rb1 = b1.get();
  expect_results_identical(expected_a1.result, ra1.result);
  expect_results_identical(expected_b1.result, rb1.result);
  // Interleaving streams on one server must not break either stream's
  // replay detection — each stream saw its own frame twice.
  EXPECT_TRUE(ra1.stats.replayed);
  EXPECT_TRUE(rb1.stats.replayed);
}

TEST(Stream, ShutdownCancelNeverWedgesAStream) {
  // A cancelled queued frame must release its turn, or its successors
  // (and shutdown itself) would deadlock. Submit a burst, cancel
  // immediately, and require every future to resolve — with a result or
  // CancelledError, nothing hangs.
  const auto config = stream_config();
  serve::ServerOptions options;
  options.encode_workers = 1;
  serve::SegHdcServer server(config, options);
  auto stream = server.open_stream();
  const auto frame = scene_with_square(32, 30, 8, 20);
  std::vector<std::future<core::StreamFrameResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit(stream, frame));
  }
  server.shutdown(serve::ShutdownMode::kCancel);
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (auto& future : futures) {
    try {
      future.get();
      ++completed;
    } catch (const serve::CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, futures.size());
  const auto stats = server.stats();
  EXPECT_EQ(stats.stream.frames, completed);
  EXPECT_EQ(stats.cancelled, cancelled);
}

}  // namespace
