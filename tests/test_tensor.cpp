// Tests for the CHW tensor underlying the NN runtime.
#include <gtest/gtest.h>

#include "src/nn/tensor.hpp"

namespace {

using seghdc::nn::Tensor;

TEST(Tensor, ShapeAndFill) {
  Tensor t(2, 3, 4, 1.5F);
  EXPECT_EQ(t.channels(), 2u);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_EQ(t.width(), 4u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.plane(), 12u);
  for (const auto v : t.values()) {
    EXPECT_EQ(v, 1.5F);
  }
}

TEST(Tensor, DefaultIsEmpty) {
  const Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroDimensionThrows) {
  EXPECT_THROW(Tensor(0, 2, 2), std::invalid_argument);
  EXPECT_THROW(Tensor(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(Tensor(2, 2, 0), std::invalid_argument);
}

TEST(Tensor, ChwLayout) {
  Tensor t(2, 3, 4);
  t(1, 2, 3) = 7.0F;
  // index = (c*H + y)*W + x = (1*3 + 2)*4 + 3 = 23.
  EXPECT_EQ(t.values()[23], 7.0F);
  t(0, 0, 1) = 3.0F;
  EXPECT_EQ(t.values()[1], 3.0F);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(1, 2, 2);
  EXPECT_THROW(t.at(1, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0, 2, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0, 0, 2), std::invalid_argument);
  EXPECT_NO_THROW(t.at(0, 1, 1));
}

TEST(Tensor, ZeroResetsValues) {
  Tensor t(1, 2, 2, 9.0F);
  t.zero();
  for (const auto v : t.values()) {
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(Tensor, SameShape) {
  const Tensor a(2, 3, 4);
  const Tensor b(2, 3, 4, 1.0F);
  const Tensor c(2, 4, 3);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, DataPointerIsContiguous) {
  Tensor t(1, 1, 4);
  t.data()[2] = 5.0F;
  EXPECT_EQ(t(0, 0, 2), 5.0F);
}

}  // namespace
