// The tiled intra-image encode pipeline must be invisible in the
// output: for every tile size (including ones that split bands
// unevenly, exceed the image height, or degenerate to one row) and
// every pool size, labels, unique-point IDs, weights, and op counts
// must be bit-identical to the untiled serial scan — on every
// registered kernel backend. These suites pin that guarantee on
// tile-boundary edge geometries and on the PR-2 golden batch hash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "src/core/seghdc.hpp"
#include "src/core/session.hpp"
#include "src/hdc/simd/backend.hpp"
#include "src/metrics/segmentation_metrics.hpp"
#include "src/util/parallel.hpp"

namespace {

using namespace seghdc;

// Restores automatic backend selection when a forcing test exits.
struct BackendSelectionGuard {
  ~BackendSelectionGuard() { hdc::simd::reset_backend_selection(); }
};

core::SegHdcConfig small_config() {
  core::SegHdcConfig config;
  config.dim = 384;
  config.beta = 3;
  config.iterations = 3;
  return config;
}

/// Gradient + checker content so bands share some dedup keys across
/// tile boundaries and keep many distinct ones.
img::ImageU8 textured_image(std::size_t width, std::size_t height,
                            std::size_t channels) {
  img::ImageU8 image(width, height, channels, 0);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto base = static_cast<std::uint8_t>(
          ((x / 5 + y / 4) % 2 == 0) ? 40 + (y * 7) % 60 : 200 - (x * 5) % 50);
      image(x, y, 0) = base;
      for (std::size_t c = 1; c < channels; ++c) {
        image(x, y, c) = static_cast<std::uint8_t>(base ^ (31 * c));
      }
    }
  }
  return image;
}

void expect_encode_identical(const core::EncodedImage& expected,
                             const core::EncodedImage& actual) {
  ASSERT_EQ(actual.unique_hvs.count(), expected.unique_hvs.count());
  EXPECT_EQ(actual.pixel_to_unique, expected.pixel_to_unique);
  EXPECT_EQ(actual.weights, expected.weights);
  EXPECT_EQ(actual.intensities, expected.intensities);
  for (std::size_t u = 0; u < expected.unique_hvs.count(); ++u) {
    ASSERT_TRUE(std::ranges::equal(actual.unique_hvs.row(u),
                                   expected.unique_hvs.row(u)))
        << "unique point " << u;
  }
  EXPECT_EQ(actual.ops.bind_xor_bits, expected.ops.bind_xor_bits);
}

// The core guarantee, at encode granularity where it is strongest:
// unique-point IDs (hence every downstream label) must replicate the
// serial row-major first-occurrence order for every tiling, on edge
// geometries that stress the band split — heights not divisible by
// tile_rows, single-row and single-column images, tiles taller than
// the image.
TEST(TiledEncode, UniqueIdsMatchUntiledOnEdgeGeometries) {
  struct Case {
    std::size_t width, height, channels;
  };
  const std::vector<Case> cases{
      {33, 29, 3},  // 29 % 3 != 0: ragged last band
      {1, 40, 1},   // single column
      {40, 1, 3},   // single row: every tile_rows > height
      {17, 16, 1},  // even split
  };
  const std::vector<std::size_t> tile_rows_values{1, 3, 5, 1000};
  for (const auto& c : cases) {
    const auto image = textured_image(c.width, c.height, c.channels);
    auto untiled_config = small_config();
    untiled_config.tile_rows = c.height;  // one band: the serial scan
    const core::SegHdcSession untiled(untiled_config);
    const auto expected = untiled.encode(image);
    for (const std::size_t tile_rows : tile_rows_values) {
      for (const std::size_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE(std::to_string(c.width) + "x" + std::to_string(c.height) +
                     "x" + std::to_string(c.channels) + " tile_rows=" +
                     std::to_string(tile_rows) + " threads=" +
                     std::to_string(threads));
        util::ThreadPool pool(threads);
        auto config = small_config();
        config.tile_rows = tile_rows;
        const core::SegHdcSession session(
            config, core::SegHdcSession::Options{&pool});
        expect_encode_identical(expected, session.encode(image));
      }
    }
  }
}

TEST(TiledEncode, FullPipelineLabelsMatchUntiled) {
  const auto image = textured_image(46, 37, 3);  // 37 prime: always ragged
  auto untiled_config = small_config();
  untiled_config.compute_margins = true;
  untiled_config.tile_rows = image.height();
  const auto expected = core::SegHdcSession(untiled_config).segment(image);
  for (const std::size_t tile_rows : {1u, 4u, 9u, 0u}) {  // 0 = auto
    for (const std::size_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("tile_rows=" + std::to_string(tile_rows) + " threads=" +
                   std::to_string(threads));
      util::ThreadPool pool(threads);
      auto config = untiled_config;
      config.tile_rows = tile_rows;
      const core::SegHdcSession session(config,
                                        core::SegHdcSession::Options{&pool});
      const auto actual = session.segment(image);
      EXPECT_EQ(actual.labels, expected.labels);
      EXPECT_EQ(actual.margins, expected.margins);
      EXPECT_EQ(actual.unique_points, expected.unique_points);
      EXPECT_EQ(actual.cluster_pixel_counts, expected.cluster_pixel_counts);
    }
  }
}

TEST(TiledEncode, NoDedupPathMatchesUntiled) {
  const auto image = textured_image(21, 13, 3);
  auto untiled_config = small_config();
  untiled_config.deduplicate = false;
  untiled_config.tile_rows = image.height();
  const auto expected = core::SegHdcSession(untiled_config).encode(image);
  util::ThreadPool pool(3);
  auto config = untiled_config;
  config.tile_rows = 2;
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  expect_encode_identical(expected, session.encode(image));
}

TEST(TiledEncode, RepeatedCallsReuseArenaWithoutDrift) {
  // The unique-ratio reserve hint and the per-band arenas are reused
  // across calls; a low-dedup (noisy) frame between identical frames
  // must not change any output.
  const auto image = textured_image(30, 22, 3);
  img::ImageU8 noise(30, 22, 3, 0);
  std::uint32_t state = 0x9E3779B9u;
  for (auto& value : noise.pixels()) {
    state = state * 1664525u + 1013904223u;
    value = static_cast<std::uint8_t>(state >> 24);
  }
  auto config = small_config();
  config.tile_rows = 4;
  const core::SegHdcSession session(config);
  const auto first = session.segment(image);
  const auto noisy = session.segment(noise);
  EXPECT_GT(noisy.unique_points, first.unique_points);
  const auto second = session.segment(image);
  EXPECT_EQ(first.labels, second.labels);
  EXPECT_EQ(first.unique_points, second.unique_points);
}

TEST(TiledEncode, TileRowsResolutionOrder) {
  // Explicit config beats the environment; the environment fills in
  // when the config leaves tile_rows at 0; 0/unset means auto. A
  // malformed environment value is a hard error (like
  // SEGHDC_KERNEL_BACKEND), never a silent fallback.
  const char* original = std::getenv("SEGHDC_TILE_ROWS");
  const std::string saved = original != nullptr ? original : "";

  auto config = small_config();
  ::setenv("SEGHDC_TILE_ROWS", "2", 1);
  EXPECT_EQ(core::SegHdcSession(config).tile_rows_override(), 2u);
  config.tile_rows = 7;
  EXPECT_EQ(core::SegHdcSession(config).tile_rows_override(), 7u);

  ::setenv("SEGHDC_TILE_ROWS", "not-a-number", 1);
  config.tile_rows = 0;
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  ::setenv("SEGHDC_TILE_ROWS", "-1", 1);
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  ::setenv("SEGHDC_TILE_ROWS", "3junk", 1);
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  ::setenv("SEGHDC_TILE_ROWS", " -1", 1);  // strtoull would skip+wrap
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  ::setenv("SEGHDC_TILE_ROWS", "+2", 1);  // sign also rejected
  EXPECT_THROW(core::SegHdcSession{config}, std::invalid_argument);
  config.tile_rows = 7;  // explicit config short-circuits the bad env
  EXPECT_EQ(core::SegHdcSession(config).tile_rows_override(), 7u);

  ::unsetenv("SEGHDC_TILE_ROWS");
  config.tile_rows = 0;
  EXPECT_EQ(core::SegHdcSession(config).tile_rows_override(), 0u);

  if (original != nullptr) {
    ::setenv("SEGHDC_TILE_ROWS", saved.c_str(), 1);
  }
}

TEST(TiledEncode, HugeTileRowsClampToOneBand) {
  // Values wildly above the image height (including SIZE_MAX, which
  // would overflow a naive ceil-division) mean exactly one band.
  const auto image = textured_image(19, 11, 1);
  auto untiled_config = small_config();
  untiled_config.tile_rows = image.height();
  const auto expected = core::SegHdcSession(untiled_config).encode(image);
  for (const std::size_t tile_rows :
       {std::size_t{12}, std::size_t{1} << 40,
        std::numeric_limits<std::size_t>::max()}) {
    auto config = small_config();
    config.tile_rows = tile_rows;
    expect_encode_identical(expected,
                            core::SegHdcSession(config).encode(image));
  }
}

// --- Golden gate (mirrors tests/test_session.cpp and
// tests/test_simd_backends.cpp): the PR-2 batch label hash must be
// bit-identical at pool sizes 1/2/4 and tile_rows in {1, 3, auto}, on
// every registered kernel backend. ---

img::ImageU8 golden_gray_card(std::size_t size, std::uint8_t bg,
                              std::uint8_t fg) {
  img::ImageU8 image(size, size, 1, bg);
  for (std::size_t y = size / 4; y < 3 * size / 4; ++y) {
    for (std::size_t x = size / 4; x < 3 * size / 4; ++x) {
      image(x, y) = fg;
    }
  }
  for (std::size_t x = 0; x < size; ++x) {
    image(x, 0) = static_cast<std::uint8_t>((x * 199) % 256);
  }
  return image;
}

img::ImageU8 golden_rgb_card(std::size_t width, std::size_t height) {
  img::ImageU8 image(width, height, 3, 15);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if ((x / 6 + y / 6) % 2 == 0) {
        image(x, y, 0) = 190;
        image(x, y, 1) = static_cast<std::uint8_t>(140 + (x % 32));
        image(x, y, 2) = 210;
      } else {
        image(x, y, 2) = static_cast<std::uint8_t>(20 + (y % 16));
      }
    }
  }
  return image;
}

constexpr std::uint64_t kGoldenBatchHash = 13206585988845182882ULL;

std::uint64_t golden_batch_hash(std::size_t threads,
                                std::size_t tile_rows) {
  std::vector<img::ImageU8> images;
  images.push_back(golden_gray_card(32, 30, 200));
  images.push_back(golden_rgb_card(36, 28));
  images.push_back(golden_gray_card(24, 20, 235));

  core::SegHdcConfig config;
  config.dim = 512;
  config.beta = 4;
  config.iterations = 4;
  config.seed = 42;
  config.tile_rows = tile_rows;
  util::ThreadPool pool(threads);
  const core::SegHdcSession session(config,
                                    core::SegHdcSession::Options{&pool});
  const auto results = session.segment_many(images);
  std::uint64_t hash = 14695981039346656037ULL;
  for (const auto& result : results) {
    hash = metrics::label_map_hash(result.labels, hash);
  }
  return hash;
}

TEST(TiledEncode, GoldenBatchHashStableAcrossTilesPoolsAndBackends) {
  const BackendSelectionGuard guard;
  for (const auto* backend : hdc::simd::registered_backends()) {
    if (!backend->available()) {
      continue;
    }
    hdc::simd::force_backend(backend->name);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const std::size_t tile_rows : {1u, 3u, 0u}) {  // 0 = auto
        EXPECT_EQ(golden_batch_hash(threads, tile_rows), kGoldenBatchHash)
            << "hash drifted: backend=" << backend->name
            << " threads=" << threads << " tile_rows=" << tile_rows;
      }
    }
  }
}

}  // namespace
