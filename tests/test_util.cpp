// Tests for the shared utility layer: CLI parsing, CSV writing,
// contracts, stopwatch, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/util/cli.hpp"
#include "src/util/contracts.hpp"
#include "src/util/csv.hpp"
#include "src/util/logging.hpp"
#include "src/util/stopwatch.hpp"

namespace {

using namespace seghdc::util;

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedValue) {
  const auto cli = make_cli({"--dim", "800"});
  EXPECT_EQ(cli.get_int("dim", 0), 800);
}

TEST(Cli, ParsesEqualsValue) {
  const auto cli = make_cli({"--dim=1234"});
  EXPECT_EQ(cli.get_int("dim", 0), 1234);
}

TEST(Cli, BareFlagIsTrue) {
  const auto cli = make_cli({"--paper"});
  EXPECT_TRUE(cli.get_flag("paper"));
  EXPECT_FALSE(cli.get_flag("absent"));
}

TEST(Cli, ExplicitBooleanValues) {
  EXPECT_TRUE(make_cli({"--x=true"}).get_flag("x"));
  EXPECT_TRUE(make_cli({"--x=1"}).get_flag("x"));
  EXPECT_TRUE(make_cli({"--x=on"}).get_flag("x"));
  EXPECT_FALSE(make_cli({"--x=false"}).get_flag("x"));
  EXPECT_FALSE(make_cli({"--x=0"}).get_flag("x"));
  EXPECT_FALSE(make_cli({"--x=off"}).get_flag("x"));
}

TEST(Cli, BadBooleanThrows) {
  EXPECT_THROW(make_cli({"--x=maybe"}).get_flag("x"),
               std::invalid_argument);
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = make_cli({});
  EXPECT_EQ(cli.get("name", "default"), "default");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 2.5), 2.5);
}

TEST(Cli, BadIntegerThrows) {
  EXPECT_THROW(make_cli({"--n", "abc"}).get_int("n", 0),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--n", "12x"}).get_int("n", 0),
               std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(make_cli({"--a", "0.25"}).get_double("a", 0), 0.25);
  EXPECT_THROW(make_cli({"--a", "x"}).get_double("a", 0),
               std::invalid_argument);
}

TEST(Cli, PositionalArguments) {
  const auto cli = make_cli({"input.pgm", "--dim", "8", "output.pgm"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.pgm");
  EXPECT_EQ(cli.positional()[1], "output.pgm");
}

TEST(Cli, ConsecutiveFlagsDoNotEatEachOther) {
  const auto cli = make_cli({"--paper", "--dim", "99"});
  EXPECT_TRUE(cli.get_flag("paper"));
  EXPECT_EQ(cli.get_int("dim", 0), 99);
}

TEST(Cli, RejectUnknownThrowsOnStray) {
  const auto cli = make_cli({"--oops", "1"});
  EXPECT_THROW(cli.reject_unknown({"dim"}), std::invalid_argument);
  EXPECT_NO_THROW(cli.reject_unknown({"oops"}));
}

TEST(Cli, EmptyValueThroughIntGetterIsAHardError) {
  // `--dim --paper` parses as two flags (value swallowed); reading dim
  // through a value getter must not silently become the fallback.
  const auto cli = make_cli({"--dim", "--paper"});
  try {
    cli.get_int("dim", 512);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--dim expects an integer value but none was given "
                 "(a following --option? use --dim=value)");
  }
}

TEST(Cli, EmptyValueThroughDoubleGetterIsAHardError) {
  const auto cli = make_cli({"--beta", "--paper"});
  try {
    cli.get_double("beta", 4.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--beta expects a numeric value but none was given "
                 "(a following --option? use --beta=value)");
  }
}

TEST(Cli, ExplicitEmptyEqualsValueAlsoThrowsThroughValueGetters) {
  EXPECT_THROW(make_cli({"--dim="}).get_int("dim", 1),
               std::invalid_argument);
  EXPECT_THROW(make_cli({"--d="}).get_double("d", 1.0),
               std::invalid_argument);
  // ...but is still a perfectly fine bare flag.
  EXPECT_TRUE(make_cli({"--dim="}).get_flag("dim"));
}

TEST(Cli, DoubleDashEndsOptionParsing) {
  const auto cli = make_cli({"--dim", "8", "--", "--weird-file.pgm", "--x"});
  EXPECT_EQ(cli.get_int("dim", 0), 8);
  EXPECT_FALSE(cli.has("x"));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "--weird-file.pgm");
  EXPECT_EQ(cli.positional()[1], "--x");
}

TEST(Cli, ParseSizeListHappyPath) {
  EXPECT_EQ(Cli::parse_size_list("1,2, 8\t16"),
            (std::vector<std::size_t>{1, 2, 8, 16}));
  EXPECT_TRUE(Cli::parse_size_list("").empty());
  EXPECT_TRUE(Cli::parse_size_list(" ,, ").empty());
}

TEST(Cli, ParseSizeListMalformedTokenIsAHardError) {
  // Silently dropping "x" from "4,x,8" would run a different sweep than
  // the one asked for — must hard-error, message naming the token.
  try {
    Cli::parse_size_list("4,x,8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "size list '4,x,8' contains malformed token 'x' "
                 "(digits only)");
  }
  EXPECT_THROW(Cli::parse_size_list("1,2x,3"), std::invalid_argument);
  EXPECT_THROW(Cli::parse_size_list("-1"), std::invalid_argument);
  EXPECT_THROW(Cli::parse_size_list("1.5"), std::invalid_argument);
}

TEST(Cli, ParseSizeListOverflowIsAHardError) {
  // 2^64 = 18446744073709551616 overflows 64-bit size_t; the previous
  // parser wrapped it around without complaint.
  try {
    Cli::parse_size_list("18446744073709551616");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "size list '18446744073709551616' token "
                 "'18446744073709551616' overflows size_t");
  }
  // The exact maximum still parses.
  EXPECT_EQ(Cli::parse_size_list("18446744073709551615"),
            (std::vector<std::size_t>{18446744073709551615ULL}));
}

TEST(Cli, ParseSizeListZeroPolicy) {
  EXPECT_EQ(Cli::parse_size_list("0,2", /*allow_zero=*/true),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_THROW(Cli::parse_size_list("0,2", /*allow_zero=*/false),
               std::invalid_argument);
}

TEST(Csv, WritesHeaderAndRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "seghdc_csv_test.csv")
          .string();
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x,y", "he said \"hi\""});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"he said \"\"hi\"\"\"");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "seghdc_csv_test2.csv")
          .string();
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(Csv, EnsureDirectoryCreatesNested) {
  const auto base = std::filesystem::temp_directory_path() /
                    "seghdc_dir_test" / "nested" / "deep";
  ensure_directory(base.string());
  EXPECT_TRUE(std::filesystem::is_directory(base));
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "seghdc_dir_test");
}

TEST(Contracts, ExpectsThrowsInvalidArgument) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(expects(false, "broken"), std::invalid_argument);
}

TEST(Contracts, EnsuresThrowsLogicError) {
  EXPECT_NO_THROW(ensures(true, "fine"));
  EXPECT_THROW(ensures(false, "broken"), std::logic_error);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  const double t0 = watch.seconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone non-decreasing.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GE(watch.seconds(), t0);
  watch.reset();
  EXPECT_LT(watch.seconds(), 10.0);
}

TEST(Logging, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log(LogLevel::kDebug, "should not crash (filtered)");
  set_log_level(before);
}

TEST(Stopwatch, ConcurrentReadsAreConsistent) {
  // seconds() is a pure read of a steady clock: many threads hammering
  // one stopwatch must each see monotone non-decreasing, non-negative
  // elapsed time (and TSan must stay quiet).
  const Stopwatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&watch] {
      double last = 0.0;
      for (int i = 0; i < 10000; ++i) {
        const double now = watch.seconds();
        ASSERT_GE(now, last);
        last = now;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

TEST(Logging, ConcurrentLogCallsNeverTearLines) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 250;
  // Distinct single-character filler per thread: a torn write would
  // splice two fillers (or a header) into one captured line.
  std::vector<std::string> expected;
  for (int t = 0; t < kThreads; ++t) {
    expected.push_back("[info] writer-" + std::to_string(t) + "-" +
                       std::string(60, static_cast<char>('a' + t)));
  }
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &expected] {
      const std::string payload = expected[t].substr(7);  // strip "[info] "
      for (int i = 0; i < kLines; ++i) {
        log(LogLevel::kInfo, payload);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(before);
  std::istringstream stream(captured);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(stream, line)) {
    ++lines;
    ASSERT_NE(std::find(expected.begin(), expected.end(), line),
              expected.end())
        << "torn or corrupted log line: '" << line << "'";
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kLines);
}

}  // namespace
