#!/usr/bin/env python3
"""Docs link lint: fail on broken relative links in README.md and docs/.

Checks every markdown link/image target in README.md and docs/*.md:
  - relative file targets must exist (resolved against the linking file;
    an optional #anchor suffix is stripped before the check),
  - http(s)/mailto targets are skipped (no network in CI),
  - bare #anchor self-links are skipped.

Exit 0 when every link resolves, 1 otherwise (one line per broken link:
file:line: target). Run from anywhere; paths resolve relative to the
repo root (this script's parent directory).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) and ![alt](target); target ends at the first ')' or
# space (titles like (file.md "Title") keep only the path part).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)")

# Inline code spans may contain (...) that are not links.
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def lint_file(path: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                              f"broken link target '{target}'")
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"docs_lint: expected file missing: {f}", file=sys.stderr)
        return 1
    errors = []
    for f in files:
        errors.extend(lint_file(f))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs_lint: {len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs_lint: {len(files)} file(s) OK "
          f"({', '.join(str(f.relative_to(REPO_ROOT)) for f in files)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
