#!/usr/bin/env python3
"""Chrome-trace lint: validate a trace exported by obs::TraceSession.

Usage: trace_lint.py trace.json [more.json ...]

Checks, per file:
  - top level is an object with a non-empty "traceEvents" list (an empty
    trace means the spans never fired — a silently broken capture),
  - every event is a complete ("ph": "X") span with string "name"/"cat",
    numeric "ts"/"dur" (non-negative, finite), integer "pid"/"tid", and
    an optional "args" object,
  - per tid, scope-recorded spans nest properly: sorted by start time,
    each span either starts after every open ancestor has ended or lies
    entirely within the innermost open one — partial overlap between
    siblings on one thread means the exporter (or a clock) is broken.
    Retroactive spans (RETROACTIVE_SPANS, recorded via
    obs::emit_complete) are exempt: their start time lives on the
    SUBMITTING thread, so several requests waiting concurrently and
    drained by one worker legitimately overlap on that worker's tid,
  - "otherData.dropped_events", when present, parses as a non-negative
    integer.

Exit 0 when every file passes, 1 otherwise (one line per violation:
file: message). Stdlib only; no arguments beyond the file paths.
"""

import json
import math
import sys

# Spans recorded retroactively (obs::emit_complete): the duration was
# measured by a stopwatch that started on another thread, so these do
# not obey scope nesting on the tid that happened to record them.
RETROACTIVE_SPANS = {"queue_wait"}


def check_event(event, index):
    """Returns a list of violation messages for one raw event."""
    errors = []
    if not isinstance(event, dict):
        return [f"event {index}: not an object"]
    if event.get("ph") != "X":
        errors.append(f"event {index}: ph is {event.get('ph')!r}, not 'X'")
    for key in ("name", "cat"):
        if not isinstance(event.get(key), str) or not event.get(key):
            errors.append(f"event {index}: {key!r} missing or not a "
                          "non-empty string")
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"event {index}: {key!r} missing or not numeric")
        elif not math.isfinite(value) or value < 0:
            errors.append(f"event {index}: {key!r} is {value}, expected a "
                          "finite non-negative number")
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"event {index}: {key!r} missing or not an "
                          "integer")
    if "args" in event and not isinstance(event["args"], dict):
        errors.append(f"event {index}: 'args' present but not an object")
    return errors


def check_nesting(events):
    """Spans on one thread must nest like scopes: no partial overlap."""
    errors = []
    by_tid = {}
    for index, event in enumerate(events):
        if event.get("name") in RETROACTIVE_SPANS:
            continue
        if isinstance(event.get("tid"), int) and not isinstance(
                event.get("tid"), bool):
            by_tid.setdefault(event["tid"], []).append((index, event))
    for tid, spans in sorted(by_tid.items()):
        spans.sort(key=lambda pair: (pair[1]["ts"], -pair[1]["dur"]))
        open_ends = []  # stack of (end_ts, index) of enclosing spans
        for index, event in spans:
            start = event["ts"]
            end = start + event["dur"]
            while open_ends and open_ends[-1][0] <= start:
                open_ends.pop()
            if open_ends and end > open_ends[-1][0]:
                errors.append(
                    f"tid {tid}: event {index} "
                    f"({event['name']!r} [{start}, {end})) partially "
                    f"overlaps event {open_ends[-1][1]} ending at "
                    f"{open_ends[-1][0]} — spans must nest")
                continue
            open_ends.append((end, index))
    return errors


def lint_trace(path):
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [str(error)]
    if not isinstance(trace, dict):
        return ["top level is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    if not events:
        return ["'traceEvents' is empty — no spans were recorded"]

    errors = []
    for index, event in enumerate(events):
        errors.extend(check_event(event, index))
    if not errors:  # nesting math needs well-formed ts/dur/tid first
        errors.extend(check_nesting(events))

    dropped = trace.get("otherData", {})
    if not isinstance(dropped, dict):
        errors.append("'otherData' present but not an object")
    elif "dropped_events" in dropped:
        value = dropped["dropped_events"]
        if not (isinstance(value, str) and value.isdigit()):
            errors.append(f"otherData.dropped_events is {value!r}, "
                          "expected a decimal string")
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: trace_lint.py trace.json [more.json ...]",
              file=sys.stderr)
        return 1
    failed = False
    for path in argv[1:]:
        errors = lint_trace(path)
        for error in errors:
            print(f"{path}: {error}")
            failed = True
        if not errors:
            with open(path, encoding="utf-8") as handle:
                count = len(json.load(handle)["traceEvents"])
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
